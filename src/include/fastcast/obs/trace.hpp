#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "fastcast/common/time.hpp"
#include "fastcast/runtime/ids.hpp"

/// \file trace.hpp
/// Per-message lifecycle spans and empirical δ-accounting.
///
/// The paper's headline claim is time-complexity: FastCast a-delivers global
/// messages in 4δ on the fast path and local messages in 3δ, against 6δ for
/// BaseCast (δ = one-way message delay). The tracer turns that from an
/// asymptotic argument into a measurement: every protocol layer records the
/// events below against the message id, and `delivery_deltas()` divides each
/// (adeliver − mcast) interval by the nominal δ to get the hop count a
/// delivery actually took. Under a jitter-free latency model and a zero-cost
/// CPU model the quotient is exact, which is what tests/delta_count_test.cpp
/// asserts; under realistic jitter `summarize()` still gives a faithful
/// hop-count distribution.

namespace fastcast::obs {

enum class SpanEventKind : std::uint8_t {
  kMcast,           ///< client handed the message to amulticast
  kRdeliver,        ///< reliable-multicast delivery at a replica
  kSyncSoft,        ///< SYNC-SOFT tuple ordered by group consensus (FastCast)
  kSetHardDecided,  ///< SET-HARD decided; hard clock bumped, SEND-HARD next
  kSyncHard,        ///< SYNC-HARD tuple applied to the delivery buffer
  kTask6Match,      ///< fast path: SEND-HARD matched an ordered SYNC-SOFT
  kAdeliver,        ///< atomic delivery at a replica
};
constexpr std::size_t kSpanEventKinds = 7;

const char* to_string(SpanEventKind k);

struct SpanEvent {
  SpanEventKind kind;
  NodeId node = kInvalidNode;
  GroupId group = kNoGroup;
  Time at = 0;
  /// Event-specific extra: destination-group count on kMcast/kAdeliver.
  std::uint32_t aux = 0;
};

/// All recorded events of one message, in record order.
struct Span {
  MsgId mid = 0;
  std::vector<SpanEvent> events;

  /// Time of the first kMcast event, or -1 if none was recorded.
  Time mcast_at() const;
  /// Events of one kind, in record order.
  std::vector<SpanEvent> of_kind(SpanEventKind k) const;
};

/// One delivery with its measured δ-count.
struct DeliveryDelta {
  MsgId mid = 0;
  NodeId node = kInvalidNode;
  GroupId group = kNoGroup;
  std::uint32_t dst_groups = 0;  ///< 1 = local message
  Duration elapsed = 0;          ///< adeliver time − mcast time
  double hops = 0;               ///< elapsed / δ
};

/// Paper-style aggregation of delivery hop counts, split by destination-group
/// count (local vs global messages behave differently in every protocol).
struct DeltaSummary {
  struct Class {
    std::uint32_t dst_groups = 0;
    std::uint64_t samples = 0;
    double min_hops = 0;
    double mean_hops = 0;
    double max_hops = 0;
    /// hop count rounded to nearest integer -> number of deliveries.
    std::map<int, std::uint64_t> histogram;
  };

  Duration delta = 0;            ///< nominal δ used for the division
  std::uint64_t deliveries = 0;  ///< total deliveries with a matched mcast
  std::uint64_t unmatched = 0;   ///< adeliver events without a recorded mcast
  std::vector<Class> classes;    ///< sorted by dst_groups

  /// Renders the table ("dst groups | deliveries | min | mean | max | ...").
  std::string to_string() const;
};

/// Thread-safe store of message spans. One tracer per run, shared by every
/// node; `record` takes a mutex, so tracing is opt-in (Observability keeps a
/// `tracing` flag and skips the call entirely when off).
class Tracer {
 public:
  void record(MsgId mid, SpanEventKind kind, NodeId node, GroupId group,
              Time at, std::uint32_t aux = 0);

  std::size_t span_count() const;
  std::uint64_t event_count() const;
  std::uint64_t count(SpanEventKind kind) const;

  /// Copy of one message's span; empty events if the id was never seen.
  Span span(MsgId mid) const;
  /// Copies of all spans, sorted by message id.
  std::vector<Span> spans() const;

  /// Pairs every kAdeliver with its span's kMcast and divides by `delta`.
  /// Deliveries whose span has no mcast event (e.g. traced mid-run) are
  /// skipped.
  std::vector<DeliveryDelta> delivery_deltas(Duration delta) const;
  DeltaSummary summarize(Duration delta) const;

  /// Emits {"spans": [{"mid":..., "events": [...]}, ...]}.
  void dump_json(std::ostream& out, int indent = 2) const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<MsgId, Span> spans_;
  std::uint64_t events_ = 0;
  std::array<std::uint64_t, kSpanEventKinds> by_kind_{};
};

}  // namespace fastcast::obs
