#pragma once

#include "fastcast/obs/metrics.hpp"
#include "fastcast/obs/trace.hpp"

/// \file observability.hpp
/// Run-wide observability bundle.
///
/// One Observability object per run, shared by every node context (simulator
/// node contexts or TCP node threads) via Context::set_observability. The
/// hook on Context is a plain pointer, null by default: with observability
/// disabled every instrumentation site is a single pointer test, so the hot
/// paths stay at their uninstrumented cost (verified against the
/// micro_substrate baseline).
///
/// Metrics are always live once the bundle is installed; span tracing is
/// additionally gated by `tracing` because recording per-message events
/// takes a mutex and allocates.

namespace fastcast::obs {

class Observability {
 public:
  MetricsRegistry metrics;
  Tracer tracer;
  bool tracing = false;

  /// Records a span event iff tracing is enabled.
  void trace(MsgId mid, SpanEventKind kind, NodeId node, GroupId group,
             Time at, std::uint32_t aux = 0) {
    if (tracing) tracer.record(mid, kind, node, group, at, aux);
  }
};

}  // namespace fastcast::obs
