#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

/// \file json.hpp
/// Minimal streaming JSON writer used by the observability exporters.
///
/// The repo deliberately has no third-party JSON dependency; everything we
/// emit (metrics.json, trace dumps, bench result files) is flat enough that
/// a small push-style writer suffices. The writer tracks container nesting
/// so callers never manage commas, and escapes strings per RFC 8259.

namespace fastcast::obs {

class JsonWriter {
 public:
  /// Writes to `out`; `indent` spaces per nesting level (0 = compact).
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(out), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits a member key; must be followed by a value or container begin.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  struct Frame {
    bool is_object = false;
    std::size_t items = 0;
  };

  void before_value();  ///< comma/newline/indent bookkeeping before an item
  void newline_indent();

  std::ostream& out_;
  int indent_;
  bool pending_key_ = false;  ///< a key was emitted, value comes next
  std::vector<Frame> stack_;
};

/// Writes `s` with JSON string escaping (quotes included).
void write_json_string(std::ostream& out, std::string_view s);

}  // namespace fastcast::obs
