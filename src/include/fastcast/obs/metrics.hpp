#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

/// \file metrics.hpp
/// Lightweight counters and gauges for protocol instrumentation.
///
/// A MetricsRegistry is shared by every node of a run (all simulator node
/// contexts, or all TCP node threads), so instrument values are summed over
/// the whole deployment: `paxos.decisions` is the total number of decided
/// instances observed across all replicas, not a per-node figure.
///
/// Counter/Gauge use relaxed atomics: the simulator is single-threaded, but
/// the TCP runtime runs one thread per node and instruments are hit from all
/// of them. References returned by counter()/gauge() are stable for the
/// registry's lifetime, so hot paths can look an instrument up once and keep
/// the pointer.

namespace fastcast::obs {

/// Monotonically increasing count of events.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value with a lock-free running-max helper (buffer depths,
/// queue lengths).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if larger (CAS loop).
  void record_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed distribution (latencies, queue residencies). Bucket i
/// counts observations v with 2^(i-1) < v <= 2^i (bucket 0 holds v <= 1),
/// so nanosecond-scale values span the full int64 range in 64 buckets.
/// Same relaxed-atomic contract as Counter/Gauge: safe from all node
/// threads, references from histogram() are stable.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::int64_t v) {
    const std::uint64_t u = v <= 0 ? 0 : static_cast<std::uint64_t>(v);
    const std::size_t b = u <= 1 ? 0 : 64 - static_cast<std::size_t>(
                                                __builtin_clzll(u - 1));
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v > 0 ? v : 0, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of bucket i (inclusive): 2^i, saturating at int64 max.
  static std::int64_t bucket_bound(std::size_t i);

  /// Estimated p-th percentile (0..100): the upper bound of the bucket
  /// containing that rank. Conservative (never underestimates by more than
  /// one power of two); 0 when empty.
  std::int64_t percentile(double p) const;

  /// Adds another histogram's buckets into this one.
  void merge_from(const Histogram& other);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. The returned reference stays
  /// valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Point-in-time copies, sorted by name.
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, std::int64_t> gauges() const;

  /// Snapshot of one histogram's headline stats, for reports.
  struct HistogramSummary {
    std::uint64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t p50 = 0;
    std::int64_t p95 = 0;
    std::int64_t p99 = 0;
  };
  std::map<std::string, HistogramSummary> histograms() const;

  /// Value of a counter, 0 if it was never touched (does not create it).
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;

  /// Folds `other` into this registry: counters add, gauges keep the max,
  /// histograms merge bucket-wise. Used by the bench driver to accumulate
  /// metrics across runs.
  void merge_from(const MetricsRegistry& other);

  /// Emits {"counters": {...}, "gauges": {...}}.
  void write_json(std::ostream& out, int indent = 2) const;

  /// Human-readable two-column dump, one instrument per line.
  void write_text(std::ostream& out) const;

 private:
  mutable std::mutex mu_;  ///< guards the maps; values are themselves atomic
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace fastcast::obs
