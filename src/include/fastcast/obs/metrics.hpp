#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

/// \file metrics.hpp
/// Lightweight counters and gauges for protocol instrumentation.
///
/// A MetricsRegistry is shared by every node of a run (all simulator node
/// contexts, or all TCP node threads), so instrument values are summed over
/// the whole deployment: `paxos.decisions` is the total number of decided
/// instances observed across all replicas, not a per-node figure.
///
/// Counter/Gauge use relaxed atomics: the simulator is single-threaded, but
/// the TCP runtime runs one thread per node and instruments are hit from all
/// of them. References returned by counter()/gauge() are stable for the
/// registry's lifetime, so hot paths can look an instrument up once and keep
/// the pointer.

namespace fastcast::obs {

/// Monotonically increasing count of events.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value with a lock-free running-max helper (buffer depths,
/// queue lengths).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if larger (CAS loop).
  void record_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. The returned reference stays
  /// valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Point-in-time copies, sorted by name.
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, std::int64_t> gauges() const;

  /// Value of a counter, 0 if it was never touched (does not create it).
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;

  /// Folds `other` into this registry: counters add, gauges keep the max.
  /// Used by the bench driver to accumulate metrics across runs.
  void merge_from(const MetricsRegistry& other);

  /// Emits {"counters": {...}, "gauges": {...}}.
  void write_json(std::ostream& out, int indent = 2) const;

  /// Human-readable two-column dump, one instrument per line.
  void write_text(std::ostream& out) const;

 private:
  mutable std::mutex mu_;  ///< guards the maps; values are themselves atomic
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

}  // namespace fastcast::obs
