#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "fastcast/common/codec.hpp"
#include "fastcast/runtime/ids.hpp"
#include "fastcast/storage/backend.hpp"

/// \file wal.hpp
/// Segmented, CRC-checksummed write-ahead log of typed protocol records.
///
/// On-disk format, pinned by the golden-bytes test in storage_test.cpp:
/// each record is framed as
///
///     [u32 body length][u32 CRC-32 of body][body]
///
/// with a fixed-layout body (see encode_record). Records are numbered by a
/// 1-based log sequence number (LSN); segment files are named
/// `wal-<first lsn, 16 hex digits>.seg` so a lexicographic listing is also
/// LSN order.
///
/// Recovery scans segments in order and stops at the first invalid record:
/// a CRC mismatch (bit flip) or a short frame (torn tail from a crash
/// mid-write). The scanned valid prefix is authoritative — the offending
/// segment is atomically rewritten to that prefix and later segments are
/// deleted, so a subsequent append continues from the last valid record and
/// the log never resurrects corrupt bytes.

namespace fastcast::storage {

/// Log sequence number: 1-based count of records ever appended; 0 = none.
using Lsn = std::uint64_t;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xedb88320).
std::uint32_t crc32(std::span<const std::byte> data);

enum class WalRecordType : std::uint8_t {
  kPromise = 1,     ///< acceptor of `group` promised `ballot`
  kAccept = 2,      ///< acceptor accepted (instance, ballot, value); implies promise
  kRmNextSeq = 3,   ///< rmcast sender seq toward `node` advanced to `seq`
  kRmStage = 4,     ///< rmcast frame staged for `node` at `seq` (value = encoded frame)
  kRmSettle = 5,    ///< staged frame (node, seq) acked; retransmission over
  kRmProgress = 6,  ///< rmcast receiver next_expected for origin `node` = `seq`
  kDelivered = 7,   ///< message `seq` (a MsgId) externalized as a-delivered
  kBody = 8,        ///< undelivered message body (seq = MsgId, value = encoded batch)
  kSettled = 9,        ///< `group`'s settled frontier reached `instance`; `seq` = protocol clock
  kPruneAccepted = 10, ///< `group`'s accepted entries below `instance` pruned
  kRepairInstall = 11, ///< repair installed `group`'s decided range [seq, instance)
};

/// One typed WAL record. All fields are always encoded (unused ones at
/// their defaults) so the wire format stays a single fixed layout.
struct WalRecord {
  WalRecordType type = WalRecordType::kPromise;
  GroupId group = kNoGroup;
  Ballot ballot{};
  InstanceId instance = 0;
  NodeId node = kInvalidNode;
  std::uint64_t seq = 0;
  std::vector<std::byte> value;

  static WalRecord promise(GroupId g, Ballot b);
  static WalRecord accept(GroupId g, InstanceId inst, Ballot b,
                          std::span<const std::byte> value);
  static WalRecord rm_next_seq(NodeId dest, std::uint64_t next);
  static WalRecord rm_stage(NodeId dest, std::uint64_t seq,
                            std::span<const std::byte> frame);
  static WalRecord rm_settle(NodeId dest, std::uint64_t seq);
  static WalRecord rm_progress(NodeId origin, std::uint64_t next_expected);
  static WalRecord delivered(MsgId mid);
  static WalRecord body(MsgId mid, std::span<const std::byte> encoded);
  static WalRecord settled(GroupId g, InstanceId frontier, std::uint64_t clock);
  static WalRecord prune_accepted(GroupId g, InstanceId floor);
  static WalRecord repair_install(GroupId g, InstanceId from, InstanceId through);

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// Record-body codec; the [length][crc] framing is the Wal's job.
void encode_record(Writer& w, const WalRecord& rec);
bool decode_record(Reader& r, WalRecord& rec);

struct WalReplayStats {
  std::uint64_t records = 0;             ///< valid records scanned
  std::uint64_t replayed = 0;            ///< records handed to the callback
  std::uint64_t checksum_rejections = 0; ///< records dropped by CRC/decode failure
  bool torn_tail = false;                ///< trailing partial frame repaired
  std::uint64_t dropped_segments = 0;    ///< segments discarded after corruption
};

class Wal {
 public:
  /// `segment_bytes` caps a segment's payload before the writer rolls to a
  /// new file (records are never split across segments).
  Wal(StorageBackend* backend, std::size_t segment_bytes);

  /// Scans the backend, invokes `fn` for every valid record with
  /// lsn > `skip_through` (snapshot watermark), repairs a torn/corrupt
  /// tail, and positions the writer after the last valid record. Must be
  /// called before append(); may be called again to re-open after a crash.
  WalReplayStats open(Lsn skip_through,
                      const std::function<void(Lsn, const WalRecord&)>& fn);

  Lsn append(const WalRecord& rec);

  /// Declares everything appended so far committed, opening the durability
  /// gate. With `fsync` true the dirty segments are synced first; false is
  /// the never-for-sim policy — the gate opens but a crash may still lose
  /// the records.
  void commit_all(bool fsync);

  Lsn last_lsn() const { return last_lsn_; }
  Lsn durable_lsn() const { return durable_lsn_; }
  std::uint64_t pending_records() const { return last_lsn_ - durable_lsn_; }

  /// Deletes every segment whose records all have lsn <= `lsn` (never the
  /// active segment). Returns the number of segments removed.
  std::size_t truncate_through(Lsn lsn);
  std::size_t segment_count() const { return segments_.size(); }

 private:
  struct Segment {
    std::string name;
    Lsn first = 0;            ///< lsn of the segment's first record
    std::size_t bytes = 0;    ///< valid payload bytes
    bool dirty = false;       ///< has unsynced appends
  };

  static std::string segment_name(Lsn first);
  static bool parse_segment_name(const std::string& name, Lsn& first);
  void start_segment(Lsn first);

  StorageBackend* backend_;
  std::size_t segment_bytes_;
  std::vector<Segment> segments_;
  Lsn last_lsn_ = 0;
  Lsn durable_lsn_ = 0;
  Writer body_scratch_;
  Writer frame_scratch_;
  bool opened_ = false;
};

}  // namespace fastcast::storage
