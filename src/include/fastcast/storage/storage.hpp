#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "fastcast/common/time.hpp"
#include "fastcast/storage/backend.hpp"
#include "fastcast/storage/snapshot.hpp"
#include "fastcast/storage/wal.hpp"

/// \file storage.hpp
/// Per-node durability facade: WAL + snapshots + the durability gate.
///
/// Protocol code logs a typed record (log_promise, log_accept, ...) and gets
/// back an LSN; anything that must not be externalized before the record is
/// durable — a P1b/P2b reply, an a-deliver ack — is queued via
/// when_durable(lsn, fn) and runs when the group commit covering that lsn
/// completes. On a crash the queued closures are simply dropped: the
/// externalization never happened, so replaying the record and redoing the
/// action is exactly-once from every other node's point of view.
///
/// The fsync policy decides when commits happen:
///   * always        — every commit() fsyncs (safe, slow)
///   * batch(N,t)    — fsync after N records or t elapsed, whichever first
///                     (the owner arms a timer that calls flush())
///   * never         — commits open the gate without fsync; only meaningful
///                     with the deterministic in-memory backend, where a
///                     crash then loses the unsynced suffix (never-for-sim)

namespace fastcast::obs {
class MetricsRegistry;
}

namespace fastcast::storage {

struct FsyncPolicy {
  enum class Mode : std::uint8_t { kAlways, kBatch, kNever };

  Mode mode = Mode::kAlways;
  std::uint64_t batch_records = 64;          ///< kBatch: flush after N records
  Duration batch_interval = milliseconds(5); ///< kBatch: ... or t elapsed

  /// Parses "always", "never", "batch", or "batch:N:Tms" (e.g.
  /// "batch:64:5" = 64 records / 5 ms). Returns nullopt on garbage.
  static std::optional<FsyncPolicy> parse(std::string_view text);
  std::string to_string() const;

  friend bool operator==(const FsyncPolicy&, const FsyncPolicy&) = default;
};

/// One node's durable storage. Single-threaded, like the Context that owns
/// it: every call happens on the node's handler thread.
class NodeStorage {
 public:
  struct Config {
    FsyncPolicy fsync;
    std::size_t segment_bytes = 256 * 1024;
    /// Take a snapshot (and truncate the log) every this many records.
    std::uint64_t snapshot_every = 4096;
  };

  /// A delivery replayed from the WAL whose externalization (client ack,
  /// application/checker observers) may never have run: the crash dropped
  /// its gated closure, but the record itself survived — either it was
  /// fsynced just before the kill, or a torn tail of unsynced bytes kept
  /// it. The delivered-set dedup would otherwise suppress the redelivery
  /// forever, silently losing the delivery from the application's point of
  /// view. Recovery re-externalizes these at-least-once, in the original
  /// delivery order; receivers dedup by message id.
  struct InDoubtDelivery {
    MsgId mid = 0;
    std::vector<std::byte> body;  ///< encoded batch when the WAL has it
  };

  /// What recovery found, for reports and tests.
  struct RecoveryInfo {
    Lsn snapshot_lsn = 0;            ///< watermark of the loaded snapshot
    std::uint64_t snapshots_rejected = 0;
    WalReplayStats replay;
    std::uint64_t recoveries = 0;    ///< times reset_and_recover() ran
  };

  NodeStorage(std::unique_ptr<StorageBackend> backend, Config config);
  ~NodeStorage();

  NodeStorage(const NodeStorage&) = delete;
  NodeStorage& operator=(const NodeStorage&) = delete;

  // --- logging (append; durable only after a covering commit) ------------
  Lsn log_promise(GroupId group, Ballot ballot);
  Lsn log_accept(GroupId group, InstanceId instance, Ballot ballot,
                 std::span<const std::byte> value);
  Lsn log_rm_next_seq(NodeId dest, std::uint64_t next);
  Lsn log_rm_stage(NodeId dest, std::uint64_t seq,
                   std::span<const std::byte> frame);
  Lsn log_rm_settle(NodeId dest, std::uint64_t seq);
  Lsn log_rm_progress(NodeId origin, std::uint64_t next_expected);
  Lsn log_delivered(MsgId mid);
  Lsn log_body(MsgId mid, std::span<const std::byte> encoded);
  Lsn log_settled(GroupId group, InstanceId frontier, std::uint64_t clock);
  Lsn log_prune_accepted(GroupId group, InstanceId floor);
  Lsn log_repair_install(GroupId group, InstanceId from, InstanceId through);

  // --- durability gate ----------------------------------------------------
  /// Runs `fn` once every record up to `lsn` is committed — immediately if
  /// it already is. Closures are dropped (never run) on crash or
  /// drop_pending(); callers must treat that as "the action never happened".
  void when_durable(Lsn lsn, std::function<void()> fn);

  /// Policy-driven commit point: kAlways flushes now; kBatch flushes when
  /// the batch is full (the interval timer calls flush() for the rest);
  /// kNever opens the gate without syncing.
  void commit();

  /// Unconditional group commit: sync (per policy), release every gated
  /// closure, and snapshot/truncate if due.
  void flush();

  /// Discards gated closures without running them (graceful stop: the node
  /// is going away, nothing may externalize).
  void drop_pending();

  /// Emulated kill -9: unsynced bytes are lost (a torn tail drawn from
  /// `torn_rng` may survive), gated closures are dropped. The backend and
  /// its durable bytes live on for reset_and_recover().
  void on_crash(Rng* torn_rng);

  /// Rebuilds the durable state from snapshot + log replay, repairing any
  /// torn tail, and re-opens the WAL for appends. Returns the recovered
  /// state for the protocol layers' restore hooks.
  const DurableState& reset_and_recover();

  // --- introspection ------------------------------------------------------
  /// Live fold of every record appended so far (durable or not).
  const DurableState& state() const { return state_; }
  /// Deliveries the last reset_and_recover() replayed from the WAL (not
  /// covered by the snapshot — snapshots imply the gate had drained, so
  /// everything they cover was externalized). In delivery order.
  const std::vector<InDoubtDelivery>& in_doubt_deliveries() const {
    return in_doubt_;
  }
  const RecoveryInfo& recovery_info() const { return recovery_info_; }
  Lsn last_lsn() const { return wal_.last_lsn(); }
  Lsn durable_lsn() const { return wal_.durable_lsn(); }
  std::size_t gated_count() const { return gated_.size(); }
  const FsyncPolicy& fsync_policy() const { return config_.fsync; }
  std::uint64_t snapshots_taken() const { return snapshots_taken_; }
  StorageBackend& backend() { return *backend_; }

  /// Registers storage.* instruments; pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  Lsn append(const WalRecord& rec);
  void release_gated();
  void maybe_snapshot();

  std::unique_ptr<StorageBackend> backend_;
  Config config_;
  Wal wal_;
  SnapshotStore snapshots_;
  DurableState state_;
  std::vector<InDoubtDelivery> in_doubt_;
  RecoveryInfo recovery_info_;

  struct Gated {
    Lsn lsn;
    std::function<void()> fn;
  };
  std::deque<Gated> gated_;
  bool releasing_ = false;  ///< re-entrancy guard: released fns may log+commit

  std::uint64_t records_since_snapshot_ = 0;
  std::uint64_t snapshots_taken_ = 0;
  Lsn snapshot_lsn_ = 0;  ///< watermark of the newest written/loaded snapshot

  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Creates and hands out per-node storages. With a wal_dir each node gets a
/// FileBackend under `<wal_dir>/node-<id>`; without one, a deterministic
/// MemBackend. node() is thread-safe because the TCP runtime wires nodes
/// from multiple threads; the returned NodeStorage itself is single-owner.
class StorageManager {
 public:
  struct Config {
    std::string wal_dir;  ///< empty = in-memory deterministic backend
    NodeStorage::Config node;
  };

  explicit StorageManager(Config config) : config_(std::move(config)) {}

  NodeStorage* node(NodeId id);
  bool file_backed() const { return !config_.wal_dir.empty(); }
  const Config& config() const { return config_; }

  /// Applies the registry to every existing and future node storage.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  Config config_;
  std::mutex mu_;
  std::map<NodeId, std::unique_ptr<NodeStorage>> nodes_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace fastcast::storage
