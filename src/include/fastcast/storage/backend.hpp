#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "fastcast/common/rng.hpp"

/// \file backend.hpp
/// Byte-level storage abstraction underneath the WAL and snapshot store.
///
/// A backend is a flat namespace of append-only files plus an atomic
/// replace primitive. Two implementations:
///   * FileBackend — POSIX files in one directory, real fsync(2); what a
///     deployed node uses (--wal-dir).
///   * MemBackend — deterministic in-memory files with an explicit
///     durable/pending split, so the simulator can model a kill -9 that
///     loses unsynced bytes (including a torn tail) while staying
///     byte-for-byte reproducible from a seed.
///
/// Backends are single-threaded like everything behind a Context: one node
/// owns one backend and touches it only from its own handler thread.

namespace fastcast::storage {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Names of all stored files, sorted lexicographically.
  virtual std::vector<std::string> list() const = 0;

  /// Reads the whole file into `out`; false if it does not exist.
  virtual bool read(const std::string& name, std::vector<std::byte>& out) const = 0;

  /// Appends bytes, creating the file if needed. Not durable until sync().
  virtual void append(const std::string& name, std::span<const std::byte> data) = 0;

  /// Makes every byte appended to `name` so far durable (fsync).
  virtual void sync(const std::string& name) = 0;

  /// Atomically replaces the file's content and makes it durable
  /// (write-temp + fsync + rename). Used for snapshots and tail repair:
  /// readers never observe a half-written file.
  virtual void write_atomic(const std::string& name,
                            std::span<const std::byte> data) = 0;

  virtual void remove(const std::string& name) = 0;

  /// Crash-emulation hook: discards bytes appended since the last sync,
  /// optionally keeping a random prefix (a torn tail) drawn from
  /// `torn_rng`. The file backend is a no-op — a killed process loses
  /// nothing it already write(2)-ed, since the page cache survives kill -9
  /// (power loss is out of scope); only the in-memory backend has unsynced
  /// bytes at risk.
  virtual void drop_unsynced(Rng* torn_rng) { (void)torn_rng; }
};

/// Deterministic in-memory backend for the simulator and tests.
class MemBackend final : public StorageBackend {
 public:
  std::vector<std::string> list() const override;
  bool read(const std::string& name, std::vector<std::byte>& out) const override;
  void append(const std::string& name, std::span<const std::byte> data) override;
  void sync(const std::string& name) override;
  void write_atomic(const std::string& name,
                    std::span<const std::byte> data) override;
  void remove(const std::string& name) override;
  void drop_unsynced(Rng* torn_rng) override;

  /// Bytes not yet covered by a sync, across all files (tests).
  std::size_t pending_bytes() const;

 private:
  struct File {
    std::vector<std::byte> durable;
    std::vector<std::byte> pending;  ///< appended since the last sync
  };
  std::map<std::string, File> files_;
};

/// POSIX file backend rooted at one directory (created on demand, with
/// parents). Append file descriptors are cached per file; sync() is a real
/// fsync(2), write_atomic() the usual tmp + fsync + rename + dir-fsync.
class FileBackend final : public StorageBackend {
 public:
  explicit FileBackend(std::string dir);
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  std::vector<std::string> list() const override;
  bool read(const std::string& name, std::vector<std::byte>& out) const override;
  void append(const std::string& name, std::span<const std::byte> data) override;
  void sync(const std::string& name) override;
  void write_atomic(const std::string& name,
                    std::span<const std::byte> data) override;
  void remove(const std::string& name) override;

  const std::string& dir() const { return dir_; }

 private:
  int fd_for(const std::string& name);
  void drop_fd(const std::string& name);
  std::string path_of(const std::string& name) const;

  std::string dir_;
  std::map<std::string, int> fds_;  ///< cached O_APPEND descriptors
};

}  // namespace fastcast::storage
