#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "fastcast/common/codec.hpp"
#include "fastcast/runtime/ids.hpp"
#include "fastcast/storage/backend.hpp"
#include "fastcast/storage/wal.hpp"

/// \file snapshot.hpp
/// Materialized durable state: the fold of every WAL record, periodically
/// written as a snapshot so the log can be truncated and recovery does not
/// replay from the beginning of time.
///
/// DurableState is deliberately a *value* (maps and sets, deep ==) rather
/// than live protocol objects: the snapshot+replay equivalence test can
/// compare "snapshot at lsn K, replay K+1..N" against "replay 1..N" for
/// exact equality, which pins the apply() semantics of every record type.

namespace fastcast::storage {

/// Everything a node must not forget across a crash. Built by folding WAL
/// records (apply) or decoding a snapshot, then handed to the protocol
/// layers' restore hooks.
struct DurableState {
  struct Accepted {
    Ballot ballot;                  ///< ballot the value was accepted at
    std::vector<std::byte> value;   ///< encoded consensus value
    friend bool operator==(const Accepted&, const Accepted&) = default;
  };
  struct GroupState {
    Ballot promised;                ///< highest promise ever made
    std::map<InstanceId, Accepted> accepted;
    /// Settled delivery frontier: every instance below it is fully
    /// reflected in `delivered`, so replaying it after recovery is a
    /// provable no-op and peers may prune it (see repair.hpp).
    InstanceId settled = 0;
    /// Protocol logical clock at the time `settled` was logged — an upper
    /// bound on every timestamp influenced by the skipped instances, so a
    /// restart that jumps to `settled` never assigns a regressed timestamp.
    std::uint64_t settled_clock = 0;
    /// Accepted entries below this floor were pruned under a group-wide
    /// watermark; durability checks must not expect them in `accepted`.
    InstanceId pruned_below = 0;
    friend bool operator==(const GroupState&, const GroupState&) = default;
  };

  /// Per-group Paxos acceptor state (a node can accept for one group, but
  /// the map keeps the codec shape general).
  std::map<GroupId, GroupState> groups;

  /// Reliable-multicast sender: next per-destination sequence number, and
  /// the still-unacked staged frames keyed by (destination, seq).
  std::map<NodeId, std::uint64_t> rm_next_seq;
  std::map<std::pair<NodeId, std::uint64_t>, std::vector<std::byte>> rm_staged;

  /// Reliable-multicast receiver: next expected seq per origin (the dedup
  /// floor; everything below was already r-delivered).
  std::map<NodeId, std::uint64_t> rm_next_expected;

  /// Messages this node externalized as a-delivered (ack sent, checker
  /// informed). Replay must never deliver these again.
  std::set<MsgId> delivered;

  /// Encoded bodies of messages seen but not yet delivered — without these
  /// a recovered node could hold a decided timestamp for a message whose
  /// payload no one will retransmit.
  std::map<MsgId, std::vector<std::byte>> bodies;

  /// Folds one WAL record into the state. This is *the* definition of what
  /// each record type means; recovery and snapshotting share it.
  void apply(const WalRecord& rec);

  bool empty() const {
    return groups.empty() && rm_next_seq.empty() && rm_staged.empty() &&
           rm_next_expected.empty() && delivered.empty() && bodies.empty();
  }

  friend bool operator==(const DurableState&, const DurableState&) = default;
};

void encode_state(Writer& w, const DurableState& state);
bool decode_state(Reader& r, DurableState& state);

/// Writes and loads whole-state snapshots named `snap-<lsn hex>.snap`,
/// where lsn is the WAL position the snapshot covers (records <= lsn are
/// folded in). write() is atomic and garbage-collects all but the newest
/// two snapshots — the previous one stays as a fallback against a crash
/// landing exactly between snapshot write and log truncation.
class SnapshotStore {
 public:
  explicit SnapshotStore(StorageBackend* backend);

  void write(Lsn lsn, const DurableState& state);

  /// Loads the newest decodable snapshot; returns its covered lsn, or 0 if
  /// none exists (cold start) leaving `state` untouched. Undecodable
  /// snapshots (torn write_atomic is impossible, but a checksum guards
  /// against bit rot) are skipped in favor of the next-newest.
  Lsn load_latest(DurableState& state, std::uint64_t* rejected = nullptr);

  std::size_t count() const;

 private:
  static std::string snapshot_name(Lsn lsn);
  static bool parse_snapshot_name(const std::string& name, Lsn& lsn);

  StorageBackend* backend_;
  Writer scratch_;
};

}  // namespace fastcast::storage
