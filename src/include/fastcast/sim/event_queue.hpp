#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "fastcast/common/time.hpp"

/// \file event_queue.hpp
/// The discrete-event heart of the simulator: a priority queue of (time,
/// sequence) ordered closures. The monotonically increasing sequence number
/// breaks time ties in insertion order, which makes runs deterministic and
/// preserves FIFO among same-time arrivals.

namespace fastcast::sim {

class EventQueue {
 public:
  struct Event {
    Time at = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  void push(Time at, std::function<void()> fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; undefined when empty.
  Time next_time() const;

  /// Pops and returns the earliest event (by time, then insertion order).
  Event pop();

  std::uint64_t pushed_count() const { return next_seq_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace fastcast::sim
