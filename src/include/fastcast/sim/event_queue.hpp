#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/time.hpp"

/// \file event_queue.hpp
/// The discrete-event heart of the simulator: a pooled priority queue of
/// (time, sequence) ordered callbacks. The monotonically increasing sequence
/// number breaks time ties in insertion order, which makes runs deterministic
/// and preserves FIFO among same-time arrivals.
///
/// Hot-path design (the simulator executes one of these per message hop):
///   * EventFn stores callables inline (up to kInlineBytes) instead of going
///     through std::function, so the dominant closures — deliver (node id ×2
///     plus a shared_ptr message) and timer fires — never touch the heap.
///   * Event nodes live in a free-list pool that is allocated once and
///     recycled; a steady-state push/pop cycle performs zero allocations.
///   * The binary heap stores (time, seq, pool-index) triples — the ordering
///     keys stay inline, so sift compares never chase a pointer into the
///     pool and sift moves copy 24-byte PODs instead of whole events.

namespace fastcast::sim {

/// Move-only type-erased callable with inline small-object storage sized for
/// the simulator's hot closures. Callables larger than kInlineBytes (or with
/// extended alignment) fall back to a single heap allocation.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { take(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() {
    FC_ASSERT_MSG(ops_ != nullptr, "invoking empty EventFn");
    ops_->invoke(buf_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst from src and destroys src.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* src, void* dst) {
        Fn* s = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* src, void* dst) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  void take(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.buf_, buf_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class EventQueue {
 public:
  struct Event {
    Time at = 0;
    std::uint64_t seq = 0;
    EventFn fn;
  };

  /// Schedules `fn` at time `at`. Accepts any void() callable; small ones
  /// are stored inline in a recycled pool node (no allocation).
  template <typename F>
  void push(Time at, F&& fn) {
    const std::uint32_t idx = acquire();
    pool_[idx].fn = EventFn(std::forward<F>(fn));
    enqueue(HeapEntry{at, next_seq_++, idx});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; undefined when empty.
  Time next_time() const;

  /// Pops and returns the earliest event (by time, then insertion order).
  /// The event's pool node is recycled for future pushes.
  Event pop();

  std::uint64_t pushed_count() const { return next_seq_; }

  /// Largest number of simultaneously pending events observed so far.
  std::size_t high_water_mark() const { return high_water_; }

  /// Event nodes allocated over the queue's lifetime (the pool never
  /// shrinks; steady state is pool reuse with zero allocations).
  std::size_t pool_size() const { return pool_.size(); }

 private:
  static constexpr std::uint32_t kNilIndex =
      std::numeric_limits<std::uint32_t>::max();

  struct Node {
    EventFn fn;
    std::uint32_t next_free = kNilIndex;
  };

  /// Heap element: ordering keys inline plus the pool index of the callable.
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t idx;
  };

  /// 4-ary heap: half the levels of a binary heap, and each level's
  /// children share a cache line — fewer misses per sift on deep queues.
  static constexpr std::size_t kArity = 4;

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::uint32_t acquire();
  void enqueue(HeapEntry entry);
  void release(std::uint32_t idx);

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNilIndex;
  std::vector<HeapEntry> heap_;  ///< (at, seq)-ordered min-heap
  std::uint64_t next_seq_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace fastcast::sim
