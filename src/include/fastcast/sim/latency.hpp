#pragma once

#include <memory>
#include <vector>

#include "fastcast/common/rng.hpp"
#include "fastcast/common/time.hpp"
#include "fastcast/runtime/ids.hpp"
#include "fastcast/runtime/membership.hpp"

/// \file latency.hpp
/// One-way network-latency models.
///
/// The paper's three environments differ only in the latency structure
/// (plus CPU speed, which the simulator models separately):
///   * LAN — RTT ≈ 0.1 ms between any two nodes;
///   * emulated WAN / real WAN — three regions with RTTs 70 / 70 / 144 ms
///     and ~5% jitter.
/// Models return a one-way delay per (from, to) pair; jitter is drawn from
/// the simulator's dedicated network RNG so runs stay deterministic.

namespace fastcast::sim {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way delay for a message from `from` to `to` sampled now.
  virtual Duration sample(NodeId from, NodeId to, Rng& rng) const = 0;

  /// Nominal (jitter-free) delay, used by tests and latency budgeting.
  virtual Duration nominal(NodeId from, NodeId to) const = 0;
};

/// Uniform constant latency with optional relative normal jitter
/// (stddev = jitter_frac · base). Samples are clamped to ≥ min_floor so
/// jitter can never produce non-positive delays.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(Duration base, double jitter_frac = 0.0);

  Duration sample(NodeId from, NodeId to, Rng& rng) const override;
  Duration nominal(NodeId from, NodeId to) const override;

 private:
  Duration base_;
  double jitter_frac_;
};

/// Region-to-region latency matrix; nodes map to regions through the
/// Membership. Intra-region latency is a separate (small) constant.
class RegionLatency final : public LatencyModel {
 public:
  /// `matrix[i][j]` is the nominal one-way delay between regions i and j.
  /// The matrix must be square and symmetric; diagonal entries give
  /// intra-region delay.
  RegionLatency(const Membership* membership,
                std::vector<std::vector<Duration>> matrix,
                double jitter_frac = 0.0);

  Duration sample(NodeId from, NodeId to, Rng& rng) const override;
  Duration nominal(NodeId from, NodeId to) const override;

 private:
  const Membership* membership_;
  std::vector<std::vector<Duration>> matrix_;
  double jitter_frac_;
};

/// The emulated/real WAN of §5.2: R1↔R2 = 70 ms RTT, R2↔R3 = 70 ms RTT,
/// R1↔R3 = 144 ms RTT (one-way = RTT/2), 0.05 ms within a region, 5% jitter.
std::unique_ptr<LatencyModel> make_paper_wan(const Membership* membership);

/// The paper's LAN: 0.1 ms RTT between any two nodes, 5% jitter.
std::unique_ptr<LatencyModel> make_paper_lan();

}  // namespace fastcast::sim
