#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fastcast/runtime/context.hpp"
#include "fastcast/sim/event_queue.hpp"
#include "fastcast/sim/latency.hpp"

/// \file simulator.hpp
/// Deterministic discrete-event simulator.
///
/// Each node runs a Process single-threadedly. Message sends are scheduled
/// through a LatencyModel; a per-node CPU model serialises handler execution
/// (a node that is still "busy" defers later arrivals), which reproduces the
/// queueing/saturation effects the paper's throughput experiments hinge on —
/// e.g. MultiPaxos' fixed ordering group becoming CPU-bound (Fig. 3).
///
/// Determinism: one event queue ordered by (time, insertion seq); all
/// randomness (jitter, drops, per-node RNGs) derives from a single seed.

namespace fastcast {
namespace obs {
class Observability;
class Counter;
class Gauge;
}  // namespace obs

namespace sim {

/// Models per-message processing cost on a node.
///
/// Handling one inbound message (or timer) costs
///   per_message + per_send × (#unicasts issued by the handler)
/// of exclusive CPU time; outbound messages depart when the handler's CPU
/// slice ends. Zero costs give an infinitely fast node.
struct CpuModel {
  Duration per_message = 0;
  Duration per_send = 0;
  /// Serialization/copy cost per estimated wire byte of each outbound
  /// unicast (approx_wire_bytes). 0 — the default — keeps message size
  /// free, preserving the historical model; throughput experiments that
  /// care where payload *bytes* flow (dissemination/ordering splits) set
  /// it to a NIC/memcpy-scale figure, e.g. 1ns/byte ≈ 1 GB/s per node.
  Duration per_byte = 0;
};

struct SimConfig {
  std::uint64_t seed = 1;
  CpuModel cpu;                  ///< default CPU model for every node
  double drop_probability = 0;   ///< fair-lossy links: P(drop) per unicast
  bool serialize_messages = false;  ///< encode+decode each send (codec soak)
};

class Simulator {
 public:
  Simulator(const Membership& membership, std::unique_ptr<LatencyModel> latency,
            SimConfig config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers the Process for a node. Every node in the membership must be
  /// registered before start(). The simulator keeps the process alive.
  void add_process(NodeId node, std::shared_ptr<Process> process);

  /// Calls on_start on every process (in node order).
  void start();

  Time now() const { return now_; }
  const Membership& membership() const { return membership_; }

  /// Executes a single event. Returns false when the queue is empty.
  bool step();

  /// Runs until virtual time would exceed `t` (events at exactly `t` run).
  void run_until(Time t);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Runs until no events remain or `limit` is hit; returns true if the
  /// queue drained (the usual quiescence check in tests).
  bool run_to_idle(Time limit = std::numeric_limits<Time>::max());

  // Fault injection ----------------------------------------------------------

  /// Crashes a node now: pending and future events for it are discarded.
  void crash(NodeId node);
  void schedule_crash(NodeId node, Time at);
  bool is_crashed(NodeId node) const;

  /// Restarts a crashed node. By default the Process object is retained, so
  /// its in-memory state survives the restart — a simulation convenience
  /// that over-approximates durability (a real kill -9 keeps nothing that
  /// was not written to disk). Installing a recovery factory removes the
  /// fiction: the old process is discarded and a fresh one (typically
  /// rebuilt from WAL-recovered state) takes its place. Either way all
  /// timers armed before the crash are gone; the node's on_recover hook
  /// runs so it can re-arm them and re-join via catch-up/retransmission.
  /// No-op if the node is not crashed.
  void recover(NodeId node);
  void schedule_recover(NodeId node, Time at);

  /// Called synchronously inside crash(), after the node's timers/inbox are
  /// discarded. The durable chaos harness uses it to drop the node's
  /// unsynced storage bytes (emulating what kill -9 loses).
  using CrashHook = std::function<void(NodeId)>;
  void set_crash_hook(CrashHook hook) { crash_hook_ = std::move(hook); }

  /// When set, recover() replaces the node's Process with the factory's
  /// product (a real process death: no in-memory state survives) before
  /// running on_recover. Returning null keeps the existing process.
  using RecoveryFactory = std::function<std::shared_ptr<Process>(NodeId)>;
  void set_recovery_factory(RecoveryFactory factory) {
    recovery_factory_ = std::move(factory);
  }

  /// Attaches a node's durable-storage handle to its context (null detaches).
  void set_node_storage(NodeId node, storage::NodeStorage* storage);

  /// Schedules an arbitrary simulation-level action (chaos campaigns use
  /// this for drop bursts and partition windows). Runs at virtual time `at`
  /// outside any node's CPU model.
  void schedule_at(Time at, EventFn fn);

  void set_drop_probability(double p) { config_.drop_probability = p; }
  double drop_probability() const { return config_.drop_probability; }

  /// Arbitrary link filter (partitions): return false to drop the unicast.
  using LinkFilter = std::function<bool(NodeId from, NodeId to, Time at)>;
  void set_link_filter(LinkFilter filter) { link_filter_ = std::move(filter); }

  /// Overrides the CPU model of one node (e.g. a slow replica).
  void set_node_cpu(NodeId node, CpuModel cpu);

  /// Installs the run-wide observability bundle on every node context and
  /// wires the simulator's own network counters. Pass null to detach.
  void set_observability(obs::Observability* o);

  // Introspection -------------------------------------------------------------

  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }

  /// Largest number of simultaneously pending events observed so far (also
  /// exported as the "sim.event_queue.high_water" gauge when observability
  /// is attached).
  std::size_t event_queue_high_water() const { return queue_.high_water_mark(); }

  /// Context of a node, e.g. for tests that poke protocol objects directly.
  Context& context(NodeId node);

  /// Observes every unicast as it leaves a node (before loss/partition
  /// filtering). Used by the genuineness tests to assert which processes
  /// communicate at all.
  using SendObserver = std::function<void(NodeId from, NodeId to, const Message&)>;
  void set_send_observer(SendObserver observer) {
    send_observer_ = std::move(observer);
  }

 private:
  class NodeContext;
  struct NodeState;

  void deliver(NodeId to, NodeId from, const std::shared_ptr<const Message>& msg);
  void fire_timer(NodeId node, TimerId id);
  void execute_or_queue(NodeState& node, EventFn task);
  void arm_drain(NodeState& node);
  void drain_inbox(NodeState& node);
  void flush_sends(NodeState& node, Time departure);
  void run_handler(NodeState& node, Time at, EventFn&& body);

  Membership membership_;
  std::unique_ptr<LatencyModel> latency_;
  SimConfig config_;
  EventQueue queue_;
  Time now_ = 0;
  Rng net_rng_;
  std::vector<std::byte> codec_scratch_;  ///< reused by serialize_messages mode

  std::vector<std::unique_ptr<NodeState>> nodes_;

  std::uint64_t events_processed_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
  TimerId next_timer_id_ = 1;
  LinkFilter link_filter_;
  SendObserver send_observer_;
  CrashHook crash_hook_;
  RecoveryFactory recovery_factory_;

  // Cached instruments (looked up once in set_observability; null when off).
  obs::Counter* c_unicasts_ = nullptr;
  obs::Counter* c_dropped_ = nullptr;
  obs::Counter* c_crashes_ = nullptr;
  obs::Counter* c_recoveries_ = nullptr;
  obs::Gauge* g_queue_hwm_ = nullptr;
  std::size_t last_reported_hwm_ = 0;
};

}  // namespace sim
}  // namespace fastcast
