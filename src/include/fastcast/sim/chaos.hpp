#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fastcast/common/time.hpp"
#include "fastcast/runtime/membership.hpp"

/// \file chaos.hpp
/// Seeded fault-schedule generation for randomized recovery campaigns.
///
/// A ChaosSchedule is a deterministic function of (membership, config, seed):
/// the same triple always produces the same crash/recover windows, drop
/// bursts and partition episodes, so a failing campaign run reproduces from
/// its seed alone. Generation respects the protocols' fault assumptions —
/// only replicas are targeted (never clients) and at most one member of a
/// group is down at any moment, so every group keeps a majority quorum and
/// the five checker properties must hold on every run.

namespace fastcast::sim {

class Simulator;

struct ChaosEvent {
  enum class Kind : std::uint8_t {
    kCrash,           ///< node stops; timers and queued work are lost
    kRecover,         ///< node restarts with durable state, re-joins
    kDropBurstStart,  ///< raise the fair-lossy drop probability
    kDropBurstEnd,    ///< restore the baseline drop probability
    kPartitionStart,  ///< cut `node` off from every other node
    kPartitionEnd,    ///< heal the partition
  };

  Kind kind;
  Time at = 0;
  NodeId node = kInvalidNode;   ///< crash/recover/partition target
  double drop_probability = 0;  ///< burst intensity (kDropBurstStart only)
};

const char* chaos_event_kind_name(ChaosEvent::Kind kind);

struct ChaosConfig {
  Time start = 0;  ///< faults are injected in [start, end)
  Time end = 0;

  /// Crash→recover episodes across the run. Each picks a group, then a
  /// member: the group's conventional initial leader with probability
  /// `leader_bias` (exercising failover), otherwise a uniform member.
  std::size_t crashes = 2;
  double leader_bias = 0.5;
  Duration min_downtime = 0;
  Duration max_downtime = 0;

  /// Transient loss episodes: drop probability is raised to
  /// `burst_drop_probability` for a window, then restored to the
  /// simulator's baseline.
  std::size_t drop_bursts = 1;
  double burst_drop_probability = 0.05;
  Duration min_burst = 0;
  Duration max_burst = 0;

  /// Partition episodes: one replica is isolated from everyone (both
  /// directions), then healed. Single-node islands keep every group's
  /// majority intact.
  std::size_t partitions = 1;
  Duration min_partition = 0;
  Duration max_partition = 0;

  /// Lag episodes: one non-leader member is held down for a long stretch of
  /// the window and then recovered, so the group keeps deciding at full
  /// speed while the victim accumulates a large frontier gap — the
  /// state-transfer scenario. Zero by default; --lag campaigns turn it on.
  std::size_t lag_episodes = 0;
  Duration lag_min_downtime = 0;
  Duration lag_max_downtime = 0;
};

class ChaosSchedule {
 public:
  /// Deterministically derives a fault schedule from the seed.
  static ChaosSchedule generate(const Membership& membership,
                                const ChaosConfig& config, std::uint64_t seed);

  /// Installs every event into the simulator: crash/recover schedules, drop
  /// bursts (restoring the drop probability the simulator has at call time),
  /// and a link filter implementing the partition windows. Call once, before
  /// running; replaces any link filter already installed on the simulator.
  void apply(Simulator& sim) const;

  const std::vector<ChaosEvent>& events() const { return events_; }

  /// Human-readable one-line-per-event dump (for failure reports).
  std::string describe() const;

 private:
  std::vector<ChaosEvent> events_;  // sorted by time
};

}  // namespace fastcast::sim
