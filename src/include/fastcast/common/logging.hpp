#pragma once

#include <cstdarg>
#include <cstdint>

/// \file logging.hpp
/// Minimal leveled logging.
///
/// Logging in the protocol hot path is compiled in but gated by a global
/// level check so that disabled levels cost one branch. Output goes to
/// stderr; the simulator prepends virtual time via set_time_source().

namespace fastcast {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_detail {
extern LogLevel g_level;
}

/// Sets the global log level (default: kWarn, so tests and benches are quiet).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Optional provider of the "current time" printed on each line. The
/// simulator installs its virtual clock here; nullptr reverts to wall clock.
using LogTimeSource = std::int64_t (*)();
void set_log_time_source(LogTimeSource source);

/// printf-style log statement; prefer the FC_LOG macro below.
void log_write(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

inline bool log_enabled(LogLevel level) {
  return level >= log_detail::g_level;
}

}  // namespace fastcast

#define FC_LOG(level, ...)                                                  \
  do {                                                                      \
    if (::fastcast::log_enabled(level))                                     \
      ::fastcast::log_write(level, __FILE__, __LINE__, __VA_ARGS__);        \
  } while (0)

#define FC_TRACE(...) FC_LOG(::fastcast::LogLevel::kTrace, __VA_ARGS__)
#define FC_DEBUG(...) FC_LOG(::fastcast::LogLevel::kDebug, __VA_ARGS__)
#define FC_INFO(...) FC_LOG(::fastcast::LogLevel::kInfo, __VA_ARGS__)
#define FC_WARN(...) FC_LOG(::fastcast::LogLevel::kWarn, __VA_ARGS__)
#define FC_ERROR(...) FC_LOG(::fastcast::LogLevel::kError, __VA_ARGS__)
