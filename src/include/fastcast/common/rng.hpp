#pragma once

#include <cstdint>
#include <limits>

#include "fastcast/common/assert.hpp"

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// The simulator must be bit-for-bit reproducible from a seed, so we use a
/// self-contained xoshiro256** generator (seeded via SplitMix64) rather than
/// std::mt19937 + distributions, whose outputs are not portable across
/// standard-library implementations.

namespace fastcast {

/// SplitMix64 step; used to expand a single seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, reproducible PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses rejection sampling to avoid modulo
  /// bias (negligible for small bounds but free to do correctly).
  std::uint64_t uniform(std::uint64_t bound) {
    FC_ASSERT(bound > 0);
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    FC_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform_double() < p; }

  /// Standard normal via Box–Muller (the simple, reproducible variant).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-12) u1 = uniform_double();
    const double u2 = uniform_double();
    const double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * __builtin_sin(theta);
    has_cached_ = true;
    return r * __builtin_cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive an independent child generator (e.g. one per simulated node).
  Rng fork() { return Rng(next()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace fastcast
