#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

/// \file codec.hpp
/// Binary wire codec: little-endian fixed-width integers, LEB128 varints,
/// and length-prefixed byte strings. Used by the TCP transport and by the
/// simulator's optional serialize-everything mode (which exercises the same
/// encode/decode paths as the real network).
///
/// Decoding is defensive: Reader never reads past the buffer and reports
/// failure through ok()/fail() rather than exceptions, because transport
/// input is untrusted with respect to framing bugs.

namespace fastcast {

class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  /// Adopts `buf` (contents preserved, writes append) so hot paths can
  /// recycle a scratch buffer's capacity instead of allocating per message.
  /// Retrieve the buffer back with take().
  explicit Writer(std::vector<std::byte>&& buf) : buf_(std::move(buf)) {}

  /// Drops the accumulated bytes but keeps the capacity for reuse.
  void clear() { buf_.clear(); }
  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }

  void u16(std::uint16_t v) { append_le(&v, sizeof v); }
  void u32(std::uint32_t v) { append_le(&v, sizeof v); }
  void u64(std::uint64_t v) { append_le(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  /// Unsigned LEB128 varint; compact for small values (sequence numbers,
  /// sizes) which dominate the wire traffic.
  ///
  /// The 1- and 2-byte tiers — nearly all of the wire traffic — are
  /// unrolled into straight-line code so their exits are predictable;
  /// only 3+-byte values (timestamps, wide ids) reach the loop. Batched
  /// alternatives (scratch buffer + insert, resize + raw stores) measured
  /// *slower* than per-byte push_back here: libstdc++'s push_back is a
  /// compare + store when capacity holds, while insert/resize pay a
  /// non-inlined range path per call. Byte-identical to the naive loop
  /// for every value (pinned by the Codec.VarintGoldenBytes test).
  void varint(std::uint64_t v) {
    if (v < 0x80) {
      u8(static_cast<std::uint8_t>(v));
      return;
    }
    u8(static_cast<std::uint8_t>(v | 0x80));
    v >>= 7;
    if (v < 0x80) {
      u8(static_cast<std::uint8_t>(v));
      return;
    }
    u8(static_cast<std::uint8_t>(v | 0x80));
    v >>= 7;
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v | 0x80));
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  void bytes(std::span<const std::byte> data) {
    varint(data.size());
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(std::string_view s) {
    varint(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  /// Raw append without a length prefix (for nested pre-encoded blobs).
  void raw(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  const std::vector<std::byte>& data() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append_le(const void* p, std::size_t n) {
    // Host is little-endian on every supported target; memcpy keeps this
    // free of strict-aliasing issues.
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// LEB128 decode with a 1-byte fast path (the dominant case on this
  /// wire) and a bounds-check-free unrolled path whenever >=10 bytes
  /// remain — an encoded u64 never exceeds 10 bytes, so only reads near
  /// the end of the buffer need the per-byte ensure() of the slow loop.
  /// Accepts/rejects exactly what the slow loop does.
  std::uint64_t varint() {
    const std::size_t rem = remaining();
    if (rem > 0) [[likely]] {
      const auto b0 = static_cast<std::uint8_t>(data_[pos_]);
      if ((b0 & 0x80) == 0) {
        ++pos_;
        return b0;
      }
      if (rem >= 10) return varint_unrolled();
    }
    return varint_slow();
  }

  std::vector<std::byte> bytes() {
    const std::uint64_t n = varint();
    if (!ok_ || !ensure(n)) return {};
    std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str() {
    const std::uint64_t n = varint();
    if (!ok_ || !ensure(n)) return {};
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

 private:
  /// Continuation byte confirmed and >=10 bytes available: decode without
  /// per-byte bounds checks. The macro unrolls what the slow loop does at
  /// shift 7i; byte 9 lands at shift 63 with the same silent truncation of
  /// high bits, and a continuation bit on byte 9 fails exactly like the
  /// slow loop's shift > 63 guard.
  std::uint64_t varint_unrolled() {
    const std::byte* p = data_.data() + pos_;
    std::uint64_t v = static_cast<std::uint8_t>(p[0]) & 0x7fu;
#define FASTCAST_VARINT_STEP(i)                                     \
  {                                                                 \
    const auto b = static_cast<std::uint8_t>(p[i]);                 \
    v |= static_cast<std::uint64_t>(b & 0x7f) << (7 * (i));         \
    if ((b & 0x80) == 0) {                                          \
      pos_ += (i) + 1;                                              \
      return v;                                                     \
    }                                                               \
  }
    FASTCAST_VARINT_STEP(1)
    FASTCAST_VARINT_STEP(2)
    FASTCAST_VARINT_STEP(3)
    FASTCAST_VARINT_STEP(4)
    FASTCAST_VARINT_STEP(5)
    FASTCAST_VARINT_STEP(6)
    FASTCAST_VARINT_STEP(7)
    FASTCAST_VARINT_STEP(8)
    FASTCAST_VARINT_STEP(9)
#undef FASTCAST_VARINT_STEP
    return fail_zero();  // 11th byte would need shift > 63
  }

  std::uint64_t varint_slow() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift > 63) return fail_zero();
      const std::uint8_t b = u8();
      if (!ok_) return 0;
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  template <typename T>
  T read_le() {
    if (!ensure(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  bool ensure(std::uint64_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::uint64_t fail_zero() {
    ok_ = false;
    return 0;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Recycles byte buffers so per-message hot paths (TCP framing, batch
/// encoding, the simulator's serialize-everything mode) reuse capacity
/// instead of allocating a fresh vector per message. acquire() returns an
/// empty buffer (possibly with warm capacity); release() hands it back.
/// Not thread-safe: use one pool per thread/transport/context.
class BufferPool {
 public:
  std::vector<std::byte> acquire();
  void release(std::vector<std::byte>&& buf);

  std::size_t pooled() const { return pool_.size(); }

 private:
  /// Bounds idle memory: at most kMaxPooled buffers of kMaxRetainedBytes
  /// capacity are retained; anything beyond is simply freed.
  static constexpr std::size_t kMaxPooled = 64;
  static constexpr std::size_t kMaxRetainedBytes = 1 << 20;

  std::vector<std::vector<std::byte>> pool_;
};

/// Converts a string payload to bytes for Writer::bytes / tests.
std::vector<std::byte> to_bytes(std::string_view s);
std::string to_string(std::span<const std::byte> bytes);

}  // namespace fastcast
