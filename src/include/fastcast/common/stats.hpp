#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fastcast/common/time.hpp"

/// \file stats.hpp
/// Latency/throughput summaries for the experiment harness.
///
/// LatencyRecorder keeps raw samples (experiments record at most a few
/// million) so that medians and high percentiles are exact, matching the
/// paper's "median latency, 95th-percentile whiskers" reporting.

namespace fastcast {

class LatencyRecorder {
 public:
  void add(Duration sample) { samples_.push_back(sample); }
  void clear() { samples_.clear(); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Exact percentile (nearest-rank). p in [0, 100].
  Duration percentile(double p) const;
  Duration median() const { return percentile(50.0); }
  Duration min() const;
  Duration max() const;
  double mean() const;
  double stddev() const;

  const std::vector<Duration>& samples() const { return samples_; }

 private:
  // Sorted lazily on query; mutable so percentile() can stay const.
  mutable std::vector<Duration> samples_;
  mutable bool sorted_ = false;
  void sort_if_needed() const;
};

/// Throughput over a measurement window plus a 95% confidence interval
/// estimated from per-slice counts (the paper reports mean ± 95% CI).
struct ThroughputSummary {
  double mean_per_sec = 0.0;
  double ci95_per_sec = 0.0;  ///< half-width of the 95% confidence interval
  std::uint64_t total = 0;
};

ThroughputSummary summarize_throughput(const std::vector<std::uint64_t>& slice_counts,
                                       Duration slice_length);

/// Mean ± 95% CI over arbitrary doubles (used for repeated-run summaries).
struct MeanCi {
  double mean = 0.0;
  double ci95 = 0.0;
};
MeanCi mean_ci95(const std::vector<double>& values);

/// Formats a Duration as milliseconds with sensible precision, e.g. "0.691".
std::string format_ms(Duration d);

}  // namespace fastcast
