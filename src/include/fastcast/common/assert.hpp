#pragma once

#include <cstdio>
#include <cstdlib>

/// \file assert.hpp
/// Invariant checking that stays on in release builds.
///
/// Protocol code relies on internal invariants (quorum sizes, monotonic
/// clocks, decided-in-order consensus streams). Violations indicate a bug,
/// not a recoverable condition, so we abort with a message instead of
/// throwing: an exception would let a corrupted replica keep participating.

namespace fastcast {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "FC_ASSERT failed: %s at %s:%d%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace fastcast

#define FC_ASSERT(expr)                                                     \
  do {                                                                      \
    if (!(expr)) ::fastcast::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define FC_ASSERT_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) ::fastcast::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
