#pragma once

#include <cstdint>

/// \file time.hpp
/// Simulated/physical time representation.
///
/// All timestamps are nanoseconds held in a signed 64-bit integer. Signed
/// arithmetic keeps interval subtraction safe, and 64 bits of nanoseconds
/// cover ~292 years of simulated time. Free helper constructors are used
/// instead of std::chrono to keep the discrete-event hot path trivially
/// cheap and the wire encoding obvious.

namespace fastcast {

/// A point in (simulated or wall-clock) time, in nanoseconds since run start.
using Time = std::int64_t;

/// A span between two Time points, in nanoseconds.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }

/// Fractional-millisecond helper for latency matrices (e.g. 0.05 ms).
constexpr Duration milliseconds_f(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace fastcast
