#pragma once

#include <map>
#include <vector>

#include "fastcast/runtime/context.hpp"
#include "fastcast/storage/snapshot.hpp"

/// \file acceptor.hpp
/// Paxos acceptor for one group's sequence of instances.
///
/// A single promise ballot covers all instances (MultiPaxos-style), so a
/// stable leader runs Phase 1 once — or never, when the deployment
/// pre-promises the initial leader's ballot, which is how the paper's
/// prototype defines "a stable leader prior to the execution".
///
/// On accepting a value the acceptor broadcasts P2b (including the value)
/// to every learner; decisions are therefore learned two delays after the
/// proposal, the latency structure Propositions 1–2 assume.
///
/// Durability: when the context carries storage, promises and accepts are
/// logged to the WAL and the P1b/P2b replies are *gated* on the covering
/// commit — an acceptor never externalizes a promise it could forget.
/// Nacks stay ungated: they carry no promise, only advice.

namespace fastcast::paxos {

class Acceptor {
 public:
  Acceptor(GroupId group, std::vector<NodeId> learners)
      : group_(group), learners_(std::move(learners)) {}

  /// Pre-promises a ballot (stable-leader deployments). Not logged: every
  /// node derives the same initial promise from static configuration.
  void set_initial_promise(Ballot b) { promised_ = b; }

  /// Installs recovered durable state (promise + accepted values) after a
  /// real restart. Keeps the larger of the current and recovered promise,
  /// so a pre-promised initial ballot is never regressed.
  void restore(const storage::DurableState::GroupState& durable);

  void on_p1a(Context& ctx, NodeId from, const P1a& msg);
  void on_p2a(Context& ctx, NodeId from, const P2a& msg);

  /// Learner catch-up: re-sends P2b votes for accepted instances ≥
  /// msg.from_instance to the requester (bounded batch per request). When
  /// entries remain beyond the batch cap, a P2bMore continuation hint tells
  /// the requester where to re-poll instead of re-arming blindly.
  void on_p2b_request(Context& ctx, NodeId from, const P2bRequest& msg);

  /// Installs a repair-transferred decided value without broadcasting P2b.
  /// Keeps any live entry (its ballot is real); logs the accept when the
  /// context carries storage so the installed value survives a crash.
  void install(Context& ctx, InstanceId inst, const std::vector<std::byte>& value);

  /// Drops accepted entries below `floor` (group-wide settled watermark)
  /// and logs the prune so recovery folds it too. Returns entries removed.
  std::size_t prune_below(Context& ctx, InstanceId floor);

  Ballot promised() const { return promised_; }
  std::size_t accepted_count() const { return accepted_.size(); }
  InstanceId pruned_below() const { return pruned_below_; }

  struct AcceptedValue {
    Ballot vballot;
    std::vector<std::byte> value;
  };
  const std::map<InstanceId, AcceptedValue>& accepted() const {
    return accepted_;
  }

 private:
  GroupId group_;
  std::vector<NodeId> learners_;
  Ballot promised_;
  std::map<InstanceId, AcceptedValue> accepted_;
  InstanceId pruned_below_ = 0;
};

}  // namespace fastcast::paxos
