#pragma once

#include <map>
#include <vector>

#include "fastcast/runtime/context.hpp"

/// \file acceptor.hpp
/// Paxos acceptor for one group's sequence of instances.
///
/// A single promise ballot covers all instances (MultiPaxos-style), so a
/// stable leader runs Phase 1 once — or never, when the deployment
/// pre-promises the initial leader's ballot, which is how the paper's
/// prototype defines "a stable leader prior to the execution".
///
/// On accepting a value the acceptor broadcasts P2b (including the value)
/// to every learner; decisions are therefore learned two delays after the
/// proposal, the latency structure Propositions 1–2 assume.

namespace fastcast::paxos {

class Acceptor {
 public:
  Acceptor(GroupId group, std::vector<NodeId> learners)
      : group_(group), learners_(std::move(learners)) {}

  /// Pre-promises a ballot (stable-leader deployments).
  void set_initial_promise(Ballot b) { promised_ = b; }

  void on_p1a(Context& ctx, NodeId from, const P1a& msg);
  void on_p2a(Context& ctx, NodeId from, const P2a& msg);

  /// Learner catch-up: re-sends P2b votes for accepted instances ≥
  /// msg.from_instance to the requester (bounded batch per request).
  void on_p2b_request(Context& ctx, NodeId from, const P2bRequest& msg);

  Ballot promised() const { return promised_; }
  std::size_t accepted_count() const { return accepted_.size(); }

 private:
  struct AcceptedValue {
    Ballot vballot;
    std::vector<std::byte> value;
  };

  GroupId group_;
  std::vector<NodeId> learners_;
  Ballot promised_;
  std::map<InstanceId, AcceptedValue> accepted_;
};

}  // namespace fastcast::paxos
