#pragma once

#include <functional>

#include "fastcast/runtime/context.hpp"

/// \file leader_elector.hpp
/// Weak leader-election oracle (Ω) per group — §2.2 of the paper.
///
/// Two modes:
///   * static — the leader is fixed to member 0 ("a stable leader for each
///     group is defined prior to the execution", §5.2). No messages.
///   * heartbeat — the current leader broadcasts FdHeartbeat; a member that
///     misses heartbeats for `timeout` suspects the leader and advances the
///     epoch. Leader of epoch e is members[e mod n], the classic rotating
///     coordinator. Eventually all members converge on the same correct
///     leader, which is all Ω guarantees (and all the protocols need).
///
/// Epochs map onto Paxos ballot rounds as round = epoch + 1, so epoch 0
/// corresponds to the pre-promised stable ballot (1, members[0]).

namespace fastcast::paxos {

class LeaderElector {
 public:
  struct Config {
    GroupId group = kNoGroup;
    std::vector<NodeId> members;
    bool heartbeats = false;
    Duration heartbeat_interval = milliseconds(20);
    Duration timeout = milliseconds(100);
  };

  explicit LeaderElector(Config config);

  NodeId leader() const;
  std::uint64_t epoch() const { return epoch_; }
  bool is_self_leader(const Context& ctx) const { return leader() == ctx.self(); }

  /// Invoked whenever this node's view of the leader changes; the new
  /// epoch's ballot round is epoch + 1.
  using ChangeFn = std::function<void(Context& ctx, NodeId new_leader, std::uint64_t epoch)>;
  void set_on_change(ChangeFn fn) { on_change_ = std::move(fn); }

  void on_start(Context& ctx);

  /// Re-arms the heartbeat/monitor chains after a crash-recovery restart.
  /// The generation bump invalidates any chain callback that survived the
  /// restart (the TCP runtime keeps its timer map across restarts).
  void on_recover(Context& ctx);

  bool handle(Context& ctx, NodeId from, const Message& msg);

 private:
  void arm_heartbeat(Context& ctx);
  void arm_monitor(Context& ctx);
  void advance_epoch(Context& ctx, std::uint64_t epoch);

  Config config_;
  std::uint64_t epoch_ = 0;
  Time last_heard_ = 0;
  ChangeFn on_change_;
  /// Exactly one heartbeat chain and one monitor chain may be pending at a
  /// time; advance_epoch on every re-promotion used to arm a second chain
  /// while the first was still queued, doubling heartbeat traffic forever.
  bool hb_armed_ = false;
  bool monitor_armed_ = false;
  std::uint64_t timer_generation_ = 0;  ///< bumped on recovery
};

}  // namespace fastcast::paxos
