#pragma once

#include <memory>

#include "fastcast/paxos/acceptor.hpp"
#include "fastcast/paxos/leader_elector.hpp"
#include "fastcast/paxos/learner.hpp"
#include "fastcast/paxos/proposer.hpp"
#include "fastcast/repair/repair.hpp"

/// \file group_consensus.hpp
/// The per-group uniform consensus service of §2.2: an unbounded sequence
/// of Paxos instances with ordered decision delivery, a stable leader, and
/// optional leader re-election.
///
/// Every group member is acceptor + proposer + learner; additional pure
/// learners are supported (the non-genuine protocol registers *every*
/// process in the system as a learner of its fixed ordering group, which
/// is exactly what makes it non-genuine).
///
/// propose() is leader-driven: non-leaders silently ignore it, so callers
/// simply call propose() everywhere and the current leader acts — the
/// liveness story is the oracle's, as in the paper.

namespace fastcast::paxos {

class GroupConsensus {
 public:
  struct Config {
    GroupId group = kNoGroup;           ///< engine id, unique per deployment
    std::vector<NodeId> members;        ///< acceptors (2f+1)
    std::vector<NodeId> extra_learners; ///< learners beyond the members
    std::size_t window = 32;            ///< proposer pipeline depth
    bool reliable_links = true;
    Duration retry_interval = milliseconds(60);
    bool heartbeats = false;            ///< leader re-election on/off
    Duration heartbeat_interval = milliseconds(20);
    Duration election_timeout = milliseconds(100);
    repair::Options repair;             ///< state transfer + watermark pruning
  };

  GroupConsensus(Config config, NodeId self);

  /// Ordered decision stream (instances 0,1,2,... each exactly once).
  /// No-op gap fillers surface as empty values; callers must tolerate them.
  void set_decide(Learner::DecideFn fn) { learner_.set_decide(std::move(fn)); }

  void on_start(Context& ctx);

  /// Re-arms every sub-component's timer chain after a crash-recovery
  /// restart. Recovery safety — promises made before the crash are still
  /// honoured afterwards — rests on the acceptor's state surviving: either
  /// the environment retained this object (sim convenience, no storage),
  /// or a fresh instance got the WAL-recovered promises/accepted values
  /// via restore_durable() first.
  void on_recover(Context& ctx);

  /// Installs WAL-recovered acceptor state into a fresh instance (null =
  /// nothing was recovered for this group). Also marks the engine as
  /// storage-recovered: learner/proposer state is *not* durable, so
  /// catch-up polling is armed even over reliable links to relearn decided
  /// instances from the acceptors. When the recovered state shows a prior
  /// incarnation was active, the constructor's pre-promised stable
  /// leadership no longer applies: on_start/on_recover re-run Phase 1 at a
  /// round strictly above every ballot the dead incarnation can have
  /// externalized (the promise quorum reveals its accepted instances, which
  /// are re-driven before anything new — resuming at the old ballot with
  /// reset instance tracking would overwrite slots peers already decided).
  void restore_durable(const storage::DurableState::GroupState* durable);

  /// Queues a value for some instance. Only acts on the current leader.
  void propose(Context& ctx, std::vector<std::byte> value);

  /// Routes a Paxos/FD message for this engine; false if not ours.
  bool handle(Context& ctx, NodeId from, const Message& msg);

  bool is_leader(const Context& ctx) const { return elector_.is_self_leader(ctx); }
  NodeId leader() const { return elector_.leader(); }

  /// True when a propose() on the leader would hit the wire immediately —
  /// callers use this to batch (accumulate while the window is full).
  bool window_open() const { return proposer_.window_open(); }

  /// Secondary leader-change hook for the protocol layer (the primary one
  /// drives the proposer's Phase 1 internally).
  using LeaderChangeFn = std::function<void(Context&, NodeId leader)>;
  void set_on_leader_change(LeaderChangeFn fn) { on_leader_change_ = std::move(fn); }

  /// Protocol-layer settled view for the repair subsystem (frontier whose
  /// replay is a provable no-op + clock upper bound). Unset, the learner's
  /// delivery cursor is used with a zero clock — correct for protocols
  /// that externalize every decision as soon as it drains (MultiPaxos).
  void set_settled_provider(std::function<repair::Settled()> fn) {
    settled_provider_ = std::move(fn);
  }

  /// Installs one repair-transferred decided value: acceptor log (members)
  /// plus learner force-decide, which re-runs the normal ordered delivery
  /// path. Returns false when the instance was already decided here.
  bool install_decided(Context& ctx, InstanceId inst,
                       const std::vector<std::byte>& value);

  Learner& learner() { return learner_; }
  Proposer& proposer() { return proposer_; }
  Acceptor& acceptor() { return acceptor_; }
  LeaderElector& elector() { return elector_; }
  repair::RepairCoordinator* repair() { return repair_.get(); }
  const Config& config() const { return config_; }

 private:
  bool is_member(NodeId n) const;
  static std::vector<NodeId> all_learners(const Config& config);
  void arm_catch_up(Context& ctx);
  void reestablish_leadership(Context& ctx);

  /// Catch-up polls back off while they make no progress; P2bMore
  /// continuation hints cover the far-behind case without blind re-polls.
  static constexpr std::uint32_t kMaxCatchUpBackoff = 8;

  Config config_;
  NodeId self_;
  Context* ctx_ = nullptr;  ///< bound at on_start; contexts outlive processes
  bool catch_up_armed_ = false;  ///< exactly one catch-up chain pending
  bool recovered_from_storage_ = false;  ///< fresh instance fed by restore_durable
  bool must_reestablish_ = false;  ///< durable past: Phase 1 before proposing
  std::uint32_t recover_round_ = 2;  ///< first safe round after a restart
  std::uint32_t catch_up_backoff_ = 1;      ///< retry_interval multiplier
  InstanceId catch_up_last_frontier_ = 0;   ///< progress marker for backoff
  InstanceId more_polled_ = ~InstanceId{0}; ///< last P2bMore-triggered poll
  LeaderChangeFn on_leader_change_;
  std::function<repair::Settled()> settled_provider_;
  Acceptor acceptor_;
  Learner learner_;
  Proposer proposer_;
  LeaderElector elector_;
  std::unique_ptr<repair::RepairCoordinator> repair_;
};

}  // namespace fastcast::paxos
