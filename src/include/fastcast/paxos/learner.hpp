#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "fastcast/runtime/context.hpp"

/// \file learner.hpp
/// Paxos learner: counts P2b votes per (instance, ballot) and emits decided
/// values strictly in instance order. Because all P2b votes for one ballot
/// carry the same value (Paxos invariant), counting distinct acceptors per
/// ballot suffices; the value is taken from the first vote seen. One
/// exception: a vote at the reserved round-0 sentinel ballot reports a
/// repair-installed value, which is decided by construction and decides
/// immediately without a quorum (see Acceptor::install).

namespace fastcast::paxos {

class Learner {
 public:
  Learner(std::size_t quorum) : quorum_(quorum) {}

  /// Ordered decision upcall: invoked with instances 0, 1, 2, ... exactly
  /// once each, with no gaps.
  using DecideFn = std::function<void(InstanceId, const std::vector<std::byte>&)>;
  void set_decide(DecideFn fn) { decide_ = std::move(fn); }

  /// Raw decision observer (any order, once per instance) — used by the
  /// proposer to free its pipeline window.
  using DecidedObserverFn = std::function<void(InstanceId, const std::vector<std::byte>&)>;
  void set_decided_observer(DecidedObserverFn fn) { observer_ = std::move(fn); }

  void on_p2b(Context& ctx, const P2b& msg);

  /// Jumps the delivery cursor forward to `start` (no-op if not ahead).
  /// Only safe for instances whose replay is provably redundant — a
  /// storage-recovered node resuming at its durable settled frontier, where
  /// every skipped instance is fully reflected in the delivered set.
  void set_start(InstanceId start);

  /// Installs a value learned out-of-band (repair transfer) as decided,
  /// bypassing vote counting. The caller guarantees the value is the
  /// group's decided value for `inst`. Returns false if already decided.
  bool force_decided(Context& ctx, InstanceId inst,
                     const std::vector<std::byte>& value);

  InstanceId next_to_deliver() const { return next_deliver_; }
  bool is_decided(InstanceId i) const {
    return i < next_deliver_ || decided_.contains(i);
  }
  std::size_t undelivered_gap_count() const { return decided_.size(); }

 private:
  struct VoteState {
    Ballot ballot;                 // highest ballot with votes so far
    std::set<NodeId> voters;       // acceptors voting at `ballot`
    std::vector<std::byte> value;  // value at `ballot`
  };

  void drain(Context& ctx);

  std::size_t quorum_;
  DecideFn decide_;
  DecidedObserverFn observer_;
  std::map<InstanceId, VoteState> votes_;
  std::map<InstanceId, std::vector<std::byte>> decided_;  // not yet delivered
  InstanceId next_deliver_ = 0;
};

}  // namespace fastcast::paxos
