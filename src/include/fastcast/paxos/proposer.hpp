#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "fastcast/runtime/context.hpp"

/// \file proposer.hpp
/// Paxos proposer (leader role) for one group's instance sequence.
///
/// With a stable pre-promised leader (the paper's deployment) Phase 1 is
/// skipped entirely; otherwise becoming leader runs one Phase 1 covering
/// all instances from the first undecided one, adopts the highest-ballot
/// accepted values, fills gaps with no-ops, and then streams Phase 2.
///
/// Exactly-once is *not* guaranteed for proposed values: after preemption
/// a value may be decided in an instance proposed by another leader and
/// also re-proposed here. Callers (the atomic-multicast layer) are
/// idempotent — the paper's "Decided \ Ordered" filter — so duplicate
/// decisions are harmless.

namespace fastcast::paxos {

class Proposer {
 public:
  struct Config {
    GroupId group = kNoGroup;
    std::vector<NodeId> acceptors;
    std::size_t quorum = 0;
    std::size_t window = 32;      ///< max concurrently open instances
    bool reliable_links = true;   ///< disables the retransmission timer
    Duration retry_interval = milliseconds(60);
  };

  explicit Proposer(Config config) : config_(std::move(config)) {}

  /// Assume leadership without Phase 1 (acceptors pre-promised `round`).
  void assume_stable_leadership(std::uint32_t round, NodeId self);

  /// Run Phase 1 with ballot (round, self), starting from `first_undecided`.
  /// `round` is clamped up to the floor set by set_round_floor(). With
  /// storage the P1a is WAL-logged (as a promise record, raising the
  /// node's durable ballot watermark) and gated on its commit, so no
  /// ballot ever reaches the wire that a restart could forget.
  void start_leadership(Context& ctx, std::uint32_t round, InstanceId first_undecided);

  /// Lower bound for any future ballot round. A node restarted from its
  /// WAL sets this strictly above every round the dead incarnation can
  /// have externalized: reusing a round would let two incarnations place
  /// different values in one (ballot, instance) slot, which acceptors
  /// overwrite and learners mis-decide (votes at one ballot are assumed
  /// to carry one value).
  void set_round_floor(std::uint32_t round) { round_floor_ = round; }

  void resign() { phase_ = Phase::kIdle; }
  bool is_leading() const { return phase_ == Phase::kSteady; }
  bool is_preparing() const { return phase_ == Phase::kPrepare; }

  /// Queues a value; it is sent as soon as the pipeline window allows.
  void propose(Context& ctx, std::vector<std::byte> value);

  /// True when propose() would transmit immediately (used for batching).
  bool window_open() const {
    return phase_ == Phase::kSteady && in_flight_.size() < config_.window;
  }
  std::size_t queued() const { return queue_.size(); }
  std::size_t in_flight() const { return in_flight_.size(); }
  Ballot ballot() const { return ballot_; }

  void on_p1b(Context& ctx, NodeId from, const P1b& msg);
  void on_nack(Context& ctx, const PaxosNack& msg);

  /// Fed by the learner (any decision, any order): frees the window and
  /// requeues values whose instance was taken by a competing proposer.
  void on_decided(Context& ctx, InstanceId instance, const std::vector<std::byte>& value);

  /// Starts the periodic retransmission timer (lossy links only).
  void on_start(Context& ctx);

  /// Resets the retry-timer guard and re-arms after a crash-recovery
  /// restart; ballot/window state is retained (durable-state model).
  void on_recover(Context& ctx);

  /// Supplies the first undecided instance (from the learner) for Phase 1
  /// restarts after preemption.
  void set_first_undecided_provider(std::function<InstanceId()> fn) {
    first_undecided_ = std::move(fn);
  }

 private:
  enum class Phase { kIdle, kPrepare, kSteady };

  void open_instance(Context& ctx, InstanceId inst, std::vector<std::byte> value);
  void pump(Context& ctx);
  void arm_retry(Context& ctx);

  Config config_;
  Phase phase_ = Phase::kIdle;
  Ballot ballot_;
  /// WAL position covering ballot_'s promise record (0 = implicit initial
  /// ballot or no storage). Phase-1 retransmissions honour it like the
  /// first send: the ballot must be durable before any P1a is on the wire.
  std::uint64_t ballot_lsn_ = 0;
  std::uint32_t round_floor_ = 0;
  InstanceId next_instance_ = 0;

  std::deque<std::vector<std::byte>> queue_;
  std::map<InstanceId, std::vector<std::byte>> in_flight_;

  // Phase-1 state.
  InstanceId prepare_from_ = 0;
  std::set<NodeId> promises_;
  std::map<InstanceId, std::pair<Ballot, std::vector<std::byte>>> best_accepted_;
  bool retry_armed_ = false;
  std::function<InstanceId()> first_undecided_;
};

}  // namespace fastcast::paxos
