#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "fastcast/common/codec.hpp"
#include "fastcast/common/time.hpp"
#include "fastcast/runtime/ids.hpp"

/// \file message.hpp
/// The complete wire model: every message any protocol in this repository
/// puts on the network. One tagged union keeps dispatch trivial and gives
/// the TCP transport a single encode/decode entry point; the simulator
/// passes Message values by shared pointer without serializing.
///
/// Layering (bottom to top):
///   * Paxos messages (P1a..P2b) — point-to-point within a group, plus
///     learner broadcast of P2b.
///   * Reliable-multicast envelope (RmData/RmAck) — carries an
///     AmcastPayload to the processes of the destination groups.
///   * Atomic-multicast payloads (AmStart/AmSendSoft/AmSendHard) — the
///     START / SEND-SOFT / SEND-HARD messages of Algorithms 1 and 2.
///   * Client-facing messages (MpSubmit for the non-genuine protocol,
///     AmAck delivery acknowledgements).

namespace fastcast {

/// An application message being atomically multicast ("m" in the paper).
struct MulticastMessage {
  MsgId id = 0;
  NodeId sender = kInvalidNode;       ///< node to send the delivery ack to
  std::vector<GroupId> dst;           ///< destination groups, sorted, unique
  std::string payload;

  /// Absolute completion deadline (0 = none). Stamped by the client; hops
  /// with admission authority may reject the message early (Busy/kExpired)
  /// when their estimated residual queueing delay already exceeds it. On
  /// the wire this rides as an optional trailing varint of the client-facing
  /// frames (MpSubmit/MpBody/RmData-with-AmStart) so pre-deadline frames
  /// still decode (deadline = 0) and batch codecs stay byte-stable.
  Time deadline = 0;

  /// Client send timestamp (0 = none), stamped alongside the deadline. The
  /// admission point turns `now - sent_at` into a sojourn sample, so the
  /// overload estimate sees queueing the protocol clock cannot — transport
  /// queues and the receiver's own event backlog — not just staging and
  /// propose→decide waits. Second optional trailing varint after deadline
  /// (both are emitted whenever either is set, so the pair stays ordered).
  Time sent_at = 0;

  bool is_global() const { return dst.size() > 1; }
  friend bool operator==(const MulticastMessage&, const MulticastMessage&) = default;
};

/// Tuple kinds ordered by the per-group consensus ("z" in the paper).
enum class TupleKind : std::uint8_t {
  kSetHard = 0,   ///< request to assign a hard tentative timestamp
  kSyncSoft = 1,  ///< a group's soft tentative timestamp (FastCast only)
  kSyncHard = 2,  ///< a group's hard tentative timestamp
};

const char* to_string(TupleKind k);

/// A "(z, h, x, m)" tuple. Carries the destination set so that a replica
/// can process tuples for messages whose START has not arrived yet.
struct Tuple {
  TupleKind kind = TupleKind::kSetHard;
  GroupId group = kNoGroup;  ///< h — the group this timestamp belongs to
  Ts ts = 0;                 ///< x — tentative timestamp (0 = ⊥ for SET-HARD)
  MsgId mid = 0;
  std::vector<GroupId> dst;

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

/// Identity of a tuple for the ToOrder/Ordered bookkeeping: the paper's
/// "a SYNC-HARD for (h, m) was already included" tests ignore x.
struct TupleId {
  TupleKind kind;
  GroupId group;
  MsgId mid;

  friend bool operator==(const TupleId&, const TupleId&) = default;
  friend auto operator<=>(const TupleId&, const TupleId&) = default;
};

inline TupleId id_of(const Tuple& t) { return TupleId{t.kind, t.group, t.mid}; }

// ---------------------------------------------------------------------------
// Atomic-multicast payloads carried by reliable multicast.
// ---------------------------------------------------------------------------

/// (START, ⊥, ⊥, m): a-multicast request propagated to every destination.
struct AmStart {
  MulticastMessage msg;
};

/// (SEND-SOFT, h, x, m): group h's soft tentative timestamp (FastCast).
struct AmSendSoft {
  GroupId from_group = kNoGroup;
  Ts ts = 0;
  MsgId mid = 0;
  std::vector<GroupId> dst;
};

/// (SEND-HARD, h, x, m): group h's hard tentative timestamp.
struct AmSendHard {
  GroupId from_group = kNoGroup;
  Ts ts = 0;
  MsgId mid = 0;
  std::vector<GroupId> dst;
};

using AmcastPayload = std::variant<AmStart, AmSendSoft, AmSendHard>;

/// Multicast-message id an amcast payload is about (tracing, logging).
inline MsgId mid_of(const AmcastPayload& p) {
  if (const auto* start = std::get_if<AmStart>(&p)) return start->msg.id;
  if (const auto* soft = std::get_if<AmSendSoft>(&p)) return soft->mid;
  return std::get<AmSendHard>(p).mid;
}

// ---------------------------------------------------------------------------
// Reliable-multicast envelope.
// ---------------------------------------------------------------------------

/// One copy of a reliably-multicast message, addressed to a single
/// destination process. `seq` is the per-(origin, destination) FIFO
/// sequence number. `dest_seqs` lists the sequence numbers of all copies so
/// that a relay can re-send the message to the other destinations if the
/// origin crashes mid-multicast.
struct RmData {
  NodeId origin = kInvalidNode;
  std::uint64_t seq = 0;
  std::vector<GroupId> dst_groups;
  std::vector<NodeId> dest_nodes;          ///< parallel to dest_seqs
  std::vector<std::uint64_t> dest_seqs;
  AmcastPayload inner;
};

/// Acknowledgement used only when links may drop messages.
struct RmAck {
  NodeId origin = kInvalidNode;  ///< origin whose copy is being acked
  std::uint64_t seq = 0;
};

// ---------------------------------------------------------------------------
// Paxos messages. `group` identifies the consensus engine; the non-genuine
// protocol uses a dedicated ordering group.
// ---------------------------------------------------------------------------

struct P1a {
  GroupId group = kNoGroup;
  Ballot ballot;
  InstanceId from_instance = 0;  ///< phase 1 covers all instances ≥ this
};

struct P1b {
  GroupId group = kNoGroup;
  Ballot ballot;                 ///< promise ballot
  InstanceId from_instance = 0;
  struct AcceptedEntry {
    InstanceId instance = 0;
    Ballot vballot;
    std::vector<std::byte> value;
    friend bool operator==(const AcceptedEntry&, const AcceptedEntry&) = default;
  };
  std::vector<AcceptedEntry> accepted;
};

struct P2a {
  GroupId group = kNoGroup;
  Ballot ballot;
  InstanceId instance = 0;
  std::vector<std::byte> value;
};

/// Acceptors broadcast P2b (with the value) to every learner so a decision
/// is learned two delays after the proposal — the latency structure
/// Propositions 1–2 assume.
struct P2b {
  GroupId group = kNoGroup;
  Ballot ballot;
  InstanceId instance = 0;
  NodeId acceptor = kInvalidNode;
  std::vector<std::byte> value;
};

/// Nack: tells a stale proposer which ballot it lost to (latency optimisation).
struct PaxosNack {
  GroupId group = kNoGroup;
  Ballot promised;
  InstanceId instance = 0;
};

/// Learner catch-up over lossy links: asks an acceptor to re-send its P2b
/// votes for instances ≥ from_instance (the learner's next undecided one).
struct P2bRequest {
  GroupId group = kNoGroup;
  InstanceId from_instance = 0;
};

// ---------------------------------------------------------------------------
// Client-facing messages.
// ---------------------------------------------------------------------------

/// Submission to the fixed ordering group of the non-genuine protocol.
struct MpSubmit {
  MulticastMessage msg;
};

/// Out-of-band payload dissemination for the non-genuine protocol's
/// id-ordering mode (Ring-Paxos style split): the ordering leader forwards
/// the body directly to every destination replica while consensus orders
/// only compact MpIdRecord batches. Also the reply to MpBodyRequest.
struct MpBody {
  MulticastMessage msg;
};

/// Pull-based body recovery: a replica whose ordered id-record stalled
/// without its body (dissemination lost, leader crashed mid-send) asks a
/// likely holder to re-send MpBody. The requester is the `from` of the
/// envelope; any node still retaining the body answers.
struct MpBodyRequest {
  MsgId mid = 0;
};

/// Compact ordering record proposed to consensus in id mode: everything a
/// replica needs to slot the message into the decision order and to locate
/// its body. The payload itself never flows through Paxos.
struct MpIdRecord {
  MsgId mid = 0;
  NodeId sender = kInvalidNode;
  std::vector<GroupId> dst;

  friend bool operator==(const MpIdRecord&, const MpIdRecord&) = default;
};

/// Sent by a destination replica to msg.sender when it a-delivers the
/// message; closed-loop clients complete a request on the first ack.
struct AmAck {
  MsgId mid = 0;
  GroupId from_group = kNoGroup;
  NodeId deliverer = kInvalidNode;
};

/// Overload-control reply to a client (src/flow/). Non-advisory Busy is a
/// terminal verdict from a node with admission authority (the MultiPaxos
/// ordering leader): the message was NOT accepted and will never be
/// delivered — the client should back off and, budget permitting, retry.
/// Advisory Busy (genuine protocols, which cannot renege on a message once
/// it is reliably multicast) only asks the client to slow down; the message
/// is still processed. `retry_after` is the server's current queueing-delay
/// estimate, a backoff hint.
struct Busy {
  enum class Reason : std::uint8_t {
    kOverload = 0,  ///< admission controller is shedding
    kExpired = 1,   ///< deadline unmeetable given estimated queueing delay
  };
  MsgId mid = 0;
  Reason reason = Reason::kOverload;
  bool advisory = false;
  Duration retry_after = 0;

  friend bool operator==(const Busy&, const Busy&) = default;
};

/// Failure-detector heartbeat (leader election oracle).
struct FdHeartbeat {
  GroupId group = kNoGroup;
  NodeId from = kInvalidNode;
  std::uint64_t epoch = 0;
};

// ---------------------------------------------------------------------------
// State transfer & replica repair (src/repair/).
// ---------------------------------------------------------------------------

/// Periodic gossip of a replica's delivery progress within its consensus
/// group. `settled` is the settled frontier — every instance below it is
/// fully reflected in the announcer's durable delivered set, so it is the
/// announcer's vote for the group-wide pruning floor. `frontier` is the
/// announcer's next undecided instance, used by peers to detect lag.
struct WatermarkAnnounce {
  GroupId group = kNoGroup;
  NodeId from = kInvalidNode;
  InstanceId settled = 0;
  InstanceId frontier = 0;
};

/// A lagging replica asks an up-to-date peer to ship the decided range
/// [from_instance, peer frontier) as RepairSnapshot chunks.
struct RepairRequest {
  GroupId group = kNoGroup;
  InstanceId from_instance = 0;
};

/// One chunk of a repair transfer: decided values for a contiguous run of
/// instances starting at from_instance, CRC-guarded as an opaque payload
/// (see repair.hpp for the entry codec). `watermark` is the server's
/// decided frontier at serve time; `last` marks the final chunk, after
/// which the requester covers any remaining tail via normal P2bRequest.
struct RepairSnapshot {
  GroupId group = kNoGroup;
  InstanceId from_instance = 0;
  InstanceId watermark = 0;
  bool last = false;
  std::uint32_t payload_crc = 0;
  std::vector<std::byte> payload;
};

/// Acceptor continuation hint: a capped P2bRequest reply batch stopped
/// before the acceptor ran out of entries; the learner should re-poll from
/// next_instance immediately instead of waiting out its retry timer.
struct P2bMore {
  GroupId group = kNoGroup;
  InstanceId next_instance = 0;
};

using Payload = std::variant<RmData, RmAck, P1a, P1b, P2a, P2b, PaxosNack,
                             P2bRequest, MpSubmit, AmAck, FdHeartbeat,
                             WatermarkAnnounce, RepairRequest, RepairSnapshot,
                             P2bMore, MpBody, MpBodyRequest, Busy>;

struct Message {
  Payload payload;
};

/// Human-readable payload-kind name (logging/tracing).
const char* message_kind(const Message& m);

/// Cheap estimate of the encoded wire size of a message: a fixed header
/// allowance plus the dominant variable-length fields (application
/// payloads, consensus values). Used by the simulator's optional per-byte
/// CPU model to charge bandwidth-proportional cost without serializing
/// every unicast; not byte-exact, but exact for the fields that dominate.
std::size_t approx_wire_bytes(const Message& m);

// ---------------------------------------------------------------------------
// Serialization. encode/decode round-trip every payload; decode returns
// false on malformed input instead of throwing (transport input is
// untrusted with respect to framing bugs).
// ---------------------------------------------------------------------------

void encode(Writer& w, const Message& m);
bool decode(Reader& r, Message& out);

std::vector<std::byte> encode_message(const Message& m);
bool decode_message(std::span<const std::byte> bytes, Message& out);

/// Encodes into `out` (cleared first), reusing its capacity. The reusable
/// variants below produce byte-identical output to their allocating
/// counterparts; hot paths pair them with a BufferPool so steady-state
/// encoding allocates nothing.
void encode_message_into(const Message& m, std::vector<std::byte>& out);

// Exposed for unit tests of nested structures.
void encode(Writer& w, const MulticastMessage& m);
bool decode(Reader& r, MulticastMessage& out);
void encode(Writer& w, const Tuple& t);
bool decode(Reader& r, Tuple& out);

/// Encodes a batch of tuples as an opaque consensus value (and back).
std::vector<std::byte> encode_tuples(const std::vector<Tuple>& tuples);
void encode_tuples_into(const std::vector<Tuple>& tuples,
                        std::vector<std::byte>& out);
bool decode_tuples(std::span<const std::byte> bytes, std::vector<Tuple>& out);

/// Encodes a batch of MulticastMessages as an opaque consensus value for
/// the non-genuine protocol (and back).
std::vector<std::byte> encode_msg_batch(const std::vector<MulticastMessage>& msgs);
void encode_msg_batch_into(const std::vector<MulticastMessage>& msgs,
                           std::vector<std::byte>& out);
bool decode_msg_batch(std::span<const std::byte> bytes,
                      std::vector<MulticastMessage>& out);

/// Encodes a batch of id records as an opaque consensus value for the
/// non-genuine protocol's id-ordering mode (and back).
std::vector<std::byte> encode_id_batch(const std::vector<MpIdRecord>& records);
void encode_id_batch_into(const std::vector<MpIdRecord>& records,
                          std::vector<std::byte>& out);
bool decode_id_batch(std::span<const std::byte> bytes,
                     std::vector<MpIdRecord>& out);

}  // namespace fastcast
