#pragma once

#include <cstddef>
#include <vector>

#include "fastcast/runtime/ids.hpp"

/// \file membership.hpp
/// Static deployment description: which nodes exist, how they are grouped,
/// and which region each node lives in. Groups are disjoint (the paper
/// requires this for genuine atomic multicast to be solvable) and contain
/// 2f+1 replicas. Clients are nodes with group kNoGroup.

namespace fastcast {

class Membership {
 public:
  /// Adds a replica group; returns its GroupId. `regions[i]` is the region
  /// of the i-th member. Member 0 is the conventional initial leader.
  GroupId add_group(std::size_t replicas, const std::vector<RegionId>& regions);

  /// Adds a client node in `region`; returns its NodeId.
  NodeId add_client(RegionId region);

  std::size_t node_count() const { return group_of_.size(); }
  std::size_t group_count() const { return groups_.size(); }
  std::size_t client_count() const { return clients_.size(); }

  GroupId group_of(NodeId n) const;
  RegionId region_of(NodeId n) const;
  bool is_client(NodeId n) const { return group_of(n) == kNoGroup; }

  const std::vector<NodeId>& members(GroupId g) const;
  const std::vector<NodeId>& clients() const { return clients_; }

  /// Conventional initial leader of a group: its first member.
  NodeId initial_leader(GroupId g) const { return members(g).front(); }

  /// Majority quorum size for a group: floor(n/2) + 1.
  std::size_t quorum_size(GroupId g) const;

  std::vector<NodeId> all_nodes() const;
  std::vector<NodeId> all_replicas() const;

  /// Flattens the members of `dst` groups into one node list (no duplicates
  /// because groups are disjoint).
  std::vector<NodeId> nodes_of_groups(const std::vector<GroupId>& dst) const;

 private:
  std::vector<std::vector<NodeId>> groups_;
  std::vector<GroupId> group_of_;    // indexed by NodeId
  std::vector<RegionId> region_of_;  // indexed by NodeId
  std::vector<NodeId> clients_;
};

}  // namespace fastcast
