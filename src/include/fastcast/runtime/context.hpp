#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "fastcast/common/rng.hpp"
#include "fastcast/common/time.hpp"
#include "fastcast/runtime/ids.hpp"
#include "fastcast/runtime/membership.hpp"
#include "fastcast/runtime/message.hpp"

/// \file context.hpp
/// Execution environment handed to protocol code.
///
/// All protocol logic (reliable multicast, Paxos, the three atomic-multicast
/// implementations) is written against Context only, so the same objects run
/// unmodified inside the deterministic simulator and on the TCP runtime.
/// Contexts are single-threaded: the environment invokes one handler at a
/// time per node and the handler may call back into the context freely.

namespace fastcast {

namespace obs {
class Observability;
}

namespace storage {
class NodeStorage;
}

using TimerId = std::uint64_t;
constexpr TimerId kInvalidTimer = 0;

class Context {
 public:
  virtual ~Context() = default;

  /// The node this context belongs to.
  virtual NodeId self() const = 0;

  /// Current (virtual or wall-clock) time in nanoseconds since run start.
  virtual Time now() const = 0;

  /// Asynchronously sends `msg` to node `to`. Sending to self is allowed
  /// and is delivered like any other message (never synchronously, so
  /// handlers cannot re-enter).
  virtual void send(NodeId to, const Message& msg) = 0;

  /// Move-in overload for temporaries — `ctx.send(to, Message{frame})` is
  /// the dominant idiom on the protocol hot paths, and a Message carries
  /// several vectors/strings, so contexts that buffer (the simulator) take
  /// ownership instead of deep-copying. Default forwards to the copying
  /// send for contexts that serialize immediately.
  virtual void send(NodeId to, Message&& msg) {
    send(to, static_cast<const Message&>(msg));
  }

  /// Schedules `cb` to run after `delay`. Returns an id for cancel_timer.
  virtual TimerId set_timer(Duration delay, std::function<void()> cb) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  /// Deterministic per-node randomness.
  virtual Rng& rng() = 0;

  /// Static deployment description.
  virtual const Membership& membership() const = 0;

  // Convenience helpers -----------------------------------------------------

  GroupId my_group() const { return membership().group_of(self()); }

  void send_to_group(GroupId g, const Message& msg) {
    for (NodeId n : membership().members(g)) send(n, msg);
  }

  void send_to_nodes(const std::vector<NodeId>& nodes, const Message& msg) {
    for (NodeId n : nodes) send(n, msg);
  }

  // Observability -----------------------------------------------------------

  /// Run-wide metrics/tracing bundle, or null when observability is off.
  /// Non-virtual on purpose: instrumentation sites compile to a single
  /// pointer test when disabled.
  obs::Observability* obs() const { return obs_; }
  void set_observability(obs::Observability* o) { obs_ = o; }

  // Durability --------------------------------------------------------------

  /// This node's write-ahead-log handle, or null when durability is off
  /// (the default — protocol code must work unchanged without it). Same
  /// single-pointer-test contract as obs().
  storage::NodeStorage* storage() const { return storage_; }
  void set_storage(storage::NodeStorage* s) { storage_ = s; }

 private:
  obs::Observability* obs_ = nullptr;
  storage::NodeStorage* storage_ = nullptr;
};

/// A protocol endpoint: one object per node, driven by its environment.
class Process {
 public:
  virtual ~Process() = default;

  /// Called once before any message, after the whole cluster is wired up.
  virtual void on_start(Context& ctx) { (void)ctx; }

  /// Called when the environment restarts this node after a crash. Two
  /// recovery modes exist:
  ///   * Without storage (ctx.storage() == null) the environment retains
  ///     this object across the restart, so in-memory protocol state
  ///     survives by fiat — a simulation convenience, not real durability.
  ///   * With storage, the environment may instead build a *fresh* process,
  ///     hand it the recovered DurableState (see AtomicMulticast::
  ///     restore_durable), and then call on_recover on it; anything not in
  ///     the WAL is genuinely gone, as after a real kill -9.
  /// In both modes every timer armed before the crash is gone, so
  /// implementations must re-arm their timer chains here. Default: run
  /// on_start again, which is correct for stateless processes.
  virtual void on_recover(Context& ctx) { on_start(ctx); }

  /// Called for every message addressed to this node.
  virtual void on_message(Context& ctx, NodeId from, const Message& msg) = 0;
};

}  // namespace fastcast
