#pragma once

#include <cstdint>
#include <functional>

/// \file ids.hpp
/// Strongly-typed identifiers used across the stack.
///
/// Nodes are numbered densely 0..N-1 across the whole deployment (replicas
/// and clients alike). Groups are numbered 0..G-1. A message id packs the
/// sending node and a per-sender sequence number, which makes ids unique
/// without coordination and lets logs stay readable.

namespace fastcast {

using NodeId = std::uint32_t;
using GroupId = std::uint32_t;
using RegionId = std::uint32_t;

constexpr NodeId kInvalidNode = 0xffffffffu;
constexpr GroupId kNoGroup = 0xffffffffu;  ///< group of client nodes

/// Globally unique multicast-message id: (sender << 32) | per-sender counter.
using MsgId = std::uint64_t;

constexpr MsgId make_msg_id(NodeId sender, std::uint32_t seq) {
  return (static_cast<MsgId>(sender) << 32) | seq;
}
constexpr NodeId msg_id_sender(MsgId id) {
  return static_cast<NodeId>(id >> 32);
}
constexpr std::uint32_t msg_id_seq(MsgId id) {
  return static_cast<std::uint32_t>(id & 0xffffffffu);
}

/// Logical-clock value used for tentative/final timestamps.
using Ts = std::uint64_t;

/// Total order on (timestamp, message id) pairs. Final timestamps are
/// compared with this everywhere; the message-id tie-break makes the
/// delivery order total (Algorithms 1–2 leave equal-timestamp ties
/// unspecified, which would otherwise deadlock Task 5/7).
struct TsKey {
  Ts ts = 0;
  MsgId mid = 0;

  friend constexpr bool operator==(const TsKey&, const TsKey&) = default;
  friend constexpr auto operator<=>(const TsKey& a, const TsKey& b) {
    if (auto c = a.ts <=> b.ts; c != 0) return c;
    return a.mid <=> b.mid;
  }
};

/// Paxos ballot: (round, proposer id); round 0 is reserved for "never voted".
struct Ballot {
  std::uint32_t round = 0;
  NodeId node = kInvalidNode;

  friend constexpr bool operator==(const Ballot&, const Ballot&) = default;
  friend constexpr auto operator<=>(const Ballot& a, const Ballot& b) {
    if (auto c = a.round <=> b.round; c != 0) return c;
    return a.node <=> b.node;
  }
};

using InstanceId = std::uint64_t;

}  // namespace fastcast

template <>
struct std::hash<fastcast::TsKey> {
  std::size_t operator()(const fastcast::TsKey& k) const noexcept {
    return std::hash<std::uint64_t>()(k.ts * 0x9e3779b97f4a7c15ULL ^ k.mid);
  }
};
