#include "fastcast/repair/repair.hpp"

#include <algorithm>
#include <limits>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"
#include "fastcast/storage/storage.hpp"

namespace fastcast::repair {

namespace {

void count(Context& ctx, const char* name, std::uint64_t n = 1) {
  if (auto* o = ctx.obs()) o->metrics.counter(name).inc(n);
}

}  // namespace

void encode_repair_entries(const std::vector<RepairEntry>& entries,
                           std::vector<std::byte>& out) {
  out.clear();
  Writer w(std::move(out));
  w.varint(entries.size());
  for (const RepairEntry& e : entries) {
    w.varint(e.instance);
    w.bytes(e.value);
  }
  out = w.take();
}

bool decode_repair_entries(std::span<const std::byte> bytes,
                           std::vector<RepairEntry>& out) {
  Reader r(bytes);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > bytes.size()) return false;
  out.clear();
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    RepairEntry e;
    e.instance = r.varint();
    e.value = r.bytes();
    if (!r.ok()) return false;
    out.push_back(std::move(e));
  }
  return r.at_end();
}

RepairCoordinator::RepairCoordinator(Config config, Hooks hooks)
    : cfg_(std::move(config)), hooks_(std::move(hooks)) {
  FC_ASSERT_MSG(hooks_.frontier != nullptr, "repair needs a frontier hook");
  FC_ASSERT_MSG(hooks_.install != nullptr, "repair needs an install hook");
}

bool RepairCoordinator::is_member(NodeId n) const {
  return std::find(cfg_.members.begin(), cfg_.members.end(), n) !=
         cfg_.members.end();
}

void RepairCoordinator::on_start(Context& ctx) { arm_announce(ctx); }

void RepairCoordinator::on_recover(Context& ctx) {
  // Timers died with the old incarnation; an in-flight transfer is simply
  // abandoned (already-installed entries stay — they went through the
  // normal decide path) and lag detection starts it over if still needed.
  announce_armed_ = false;
  transfer_active_ = false;
  transfer_server_ = kInvalidNode;
  // Settled records logged but never flushed died with the crash (their
  // when_durable closures were dropped); fall back to the durable watermark
  // so the next announce re-logs anything above it.
  logged_settled_ = durable_settled_;
  arm_announce(ctx);
}

void RepairCoordinator::restore_durable_settled(InstanceId settled) {
  // WAL-recovered, so durable by definition; no need to re-log it.
  durable_settled_ = std::max(durable_settled_, settled);
  logged_settled_ = std::max(logged_settled_, settled);
}

void RepairCoordinator::note_decided(InstanceId inst,
                                     const std::vector<std::byte>& value) {
  if (!is_member(cfg_.self)) return;  // non-members never serve transfers
  if (inst < prune_floor_) return;
  decided_log_.try_emplace(inst, value);
}

void RepairCoordinator::arm_announce(Context& ctx) {
  if (announce_armed_) return;
  announce_armed_ = true;
  ctx.set_timer(cfg_.options.announce_interval, [this, &ctx] {
    announce_armed_ = false;
    announce(ctx);
    arm_announce(ctx);
  });
}

void RepairCoordinator::announce(Context& ctx) {
  Settled s = hooks_.settled ? hooks_.settled() : Settled{};
  const InstanceId frontier = hooks_.frontier();
  if (s.frontier > frontier) s.frontier = frontier;

  // The settled record trails the kDelivered records it summarizes in LSN
  // order, so any surviving log prefix containing it contains them too.
  if (storage::NodeStorage* st = ctx.storage()) {
    if (s.frontier > logged_settled_) {
      logged_settled_ = s.frontier;
      const storage::Lsn lsn = st->log_settled(cfg_.group, s.frontier, s.clock);
      // Peers prune to whatever settled value we announce, so the announced
      // cursor must never outrun what a crash here would preserve — a node
      // recovering below the group prune floor finds the gap unlearnable
      // from anyone. Latch the announceable watermark only once the record
      // is durable: fsync=always flushes in the commit() below, so the
      // latch runs before this announce is built; batch trails by at most
      // one flush. A closure dropped by a crash leaves the latch at the
      // older durable value, which is exactly what recovery resumes from.
      st->when_durable(lsn, [this, v = s.frontier] {
        if (v > durable_settled_) durable_settled_ = v;
      });
      st->commit();
    }
  } else if (s.frontier > durable_settled_) {
    durable_settled_ = s.frontier;  // no storage: a restart keeps everything
  }

  marks_[cfg_.self] = PeerMark{durable_settled_, frontier};
  const WatermarkAnnounce ann{cfg_.group, cfg_.self, durable_settled_, frontier};
  for (NodeId peer : cfg_.learners) {
    if (peer != cfg_.self) ctx.send(peer, Message{ann});
  }

  // A stalled transfer (server crashed, chunk corrupted away) would
  // otherwise pin transfer_active_ forever; time it out on the announce
  // tick and let lag detection pick a different server.
  if (transfer_active_ &&
      ctx.now() - last_chunk_at_ > cfg_.options.transfer_timeout) {
    count(ctx, "repair.transfer_timeouts");
    last_failed_server_ = transfer_server_;
    transfer_active_ = false;
  }

  maybe_prune(ctx);
  maybe_request(ctx);
}

void RepairCoordinator::maybe_prune(Context& ctx) {
  if (!cfg_.options.prune) return;
  // Every configured learner must have announced at least once: a silent
  // peer may still need instance 0, so its silence blocks pruning rather
  // than being ignored.
  InstanceId floor = std::numeric_limits<InstanceId>::max();
  for (NodeId learner : cfg_.learners) {
    auto it = marks_.find(learner);
    if (it == marks_.end()) return;
    floor = std::min(floor, it->second.settled);
  }
  if (floor <= prune_floor_) return;
  prune_floor_ = floor;
  decided_log_.erase(decided_log_.begin(), decided_log_.lower_bound(floor));
  if (hooks_.prune) hooks_.prune(ctx, floor);
  count(ctx, "repair.prunes");
  if (auto* o = ctx.obs()) {
    o->metrics.gauge("repair.prune_watermark").record_max(floor);
  }
}

void RepairCoordinator::maybe_request(Context& ctx) {
  if (transfer_active_) return;
  const InstanceId mine = hooks_.frontier();
  NodeId best = kInvalidNode;
  NodeId fallback = kInvalidNode;
  InstanceId best_frontier = mine;
  for (NodeId member : cfg_.members) {
    if (member == cfg_.self) continue;
    auto it = marks_.find(member);
    if (it == marks_.end() || it->second.frontier <= best_frontier) continue;
    if (member == last_failed_server_) {
      fallback = member;
      continue;
    }
    best = member;
    best_frontier = it->second.frontier;
  }
  if (best == kInvalidNode) best = fallback;  // only the failed peer is ahead
  if (best == kInvalidNode) return;
  const auto gap = marks_[best].frontier - mine;
  if (gap < cfg_.options.lag_threshold) return;

  transfer_active_ = true;
  transfer_server_ = best;
  expect_next_ = mine;
  chunks_fetched_ = 0;
  transfer_started_ = ctx.now();
  last_chunk_at_ = ctx.now();
  count(ctx, "repair.transfers");
  FC_DEBUG("repair: node %u requests group %u instances >= %llu from %u (gap %llu)",
           cfg_.self, cfg_.group, static_cast<unsigned long long>(mine), best,
           static_cast<unsigned long long>(gap));
  ctx.send(best, Message{RepairRequest{cfg_.group, mine}});
}

void RepairCoordinator::on_request(Context& ctx, NodeId from,
                                   const RepairRequest& msg) {
  if (!is_member(cfg_.self)) return;  // only acceptors retain a decided log
  const InstanceId frontier = hooks_.frontier();
  if (msg.from_instance >= frontier) return;
  // Serve ONE chunk of the contiguous decided run starting exactly at the
  // requested instance (the requester pulls the next chunk after installing
  // this one — stop-and-wait, so jittered links can never reorder a
  // transfer). A hole at the start (recently-restarted server still
  // relearning) means we cannot prove contiguity, so we serve nothing and
  // let the requester time out toward another peer.
  auto it = decided_log_.find(msg.from_instance);
  if (it == decided_log_.end()) return;

  std::vector<RepairEntry> run;
  InstanceId next = msg.from_instance;
  while (it != decided_log_.end() && it->first == next && next < frontier &&
         run.size() < cfg_.options.chunk_entries) {
    run.push_back(RepairEntry{it->first, it->second});
    ++next;
    ++it;
  }
  if (run.empty()) return;
  // Last chunk when the run reaches our frontier or hits a hole we cannot
  // bridge; the requester's tail goes through normal quorum learning.
  const bool more = next < frontier && it != decided_log_.end() &&
                    it->first == next;

  RepairSnapshot snap;
  snap.group = cfg_.group;
  snap.from_instance = run.front().instance;
  snap.watermark = next;
  snap.last = !more;
  encode_repair_entries(run, snap.payload);
  snap.payload_crc = storage::crc32(snap.payload);
  count(ctx, "repair.snapshots_served");
  count(ctx, "repair.bytes_shipped", snap.payload.size());
  ctx.send(from, Message{std::move(snap)});
}

void RepairCoordinator::reject_transfer(Context& ctx, NodeId from) {
  count(ctx, "repair.snapshots_rejected");
  FC_WARN("repair: node %u rejects snapshot chunk from %u (group %u)",
          cfg_.self, from, cfg_.group);
  last_failed_server_ = from;
  transfer_active_ = false;
  // Retry immediately, preferring a different peer over the failed one.
  maybe_request(ctx);
}

void RepairCoordinator::on_snapshot(Context& ctx, NodeId from,
                                    const RepairSnapshot& msg) {
  if (!transfer_active_ || from != transfer_server_) return;  // stale chunk

  // Corruption (bad CRC, undecodable or non-contiguous payload) indicts the
  // server: blacklist it and re-fetch elsewhere.
  std::vector<RepairEntry> entries;
  if (storage::crc32(msg.payload) != msg.payload_crc ||
      !decode_repair_entries(msg.payload, entries) || entries.empty()) {
    reject_transfer(ctx, from);
    return;
  }
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].instance != entries[i - 1].instance + 1) {
      reject_transfer(ctx, from);
      return;
    }
  }
  // A chunk that doesn't start at the expected instance is stale (a
  // duplicate, or left over from an abandoned transfer), not evidence of a
  // bad server: ignore it and let the timeout re-drive if needed.
  if (entries.front().instance != expect_next_) return;
  last_chunk_at_ = ctx.now();

  std::uint64_t installed = 0;
  for (const RepairEntry& e : entries) {
    if (hooks_.install(ctx, e.instance, e.value)) ++installed;
  }
  const InstanceId chunk_first = entries.front().instance;
  expect_next_ = entries.back().instance + 1;
  count(ctx, "repair.entries_installed", installed);
  if (storage::NodeStorage* st = ctx.storage()) {
    // Boundary marker: per-entry accepts and deliveries carry the durable
    // state; the marker makes a crash mid-transfer visible in replay.
    st->log_repair_install(cfg_.group, chunk_first, expect_next_);
    st->commit();
  }

  ++chunks_fetched_;
  if (!msg.last && chunks_fetched_ < cfg_.options.max_chunks_per_request) {
    // Pull the next chunk; one outstanding request at a time keeps the
    // transfer immune to link-level reordering.
    ctx.send(transfer_server_, Message{RepairRequest{cfg_.group, expect_next_}});
    return;
  }
  transfer_active_ = false;
  last_failed_server_ = kInvalidNode;
  count(ctx, "repair.transfers_completed");
  if (auto* o = ctx.obs()) {
    o->metrics.histogram("repair.catchup_latency_ns")
        .observe(static_cast<std::uint64_t>(ctx.now() - transfer_started_));
  }
  // The tail above the shipped watermark (and anything decided while the
  // transfer ran, or beyond the per-transfer chunk budget) goes through
  // normal quorum learning; lag detection restarts a transfer if the
  // residual gap is still above threshold.
  if (hooks_.kick_tail) hooks_.kick_tail(ctx);
}

void RepairCoordinator::on_announce(Context& ctx, NodeId from,
                                    const WatermarkAnnounce& msg) {
  auto& mark = marks_[from];
  mark.settled = std::max(mark.settled, msg.settled);
  mark.frontier = std::max(mark.frontier, msg.frontier);
  maybe_prune(ctx);
  maybe_request(ctx);
}

bool RepairCoordinator::handle(Context& ctx, NodeId from, const Message& msg) {
  if (const auto* ann = std::get_if<WatermarkAnnounce>(&msg.payload)) {
    if (ann->group != cfg_.group) return false;
    on_announce(ctx, from, *ann);
    return true;
  }
  if (const auto* req = std::get_if<RepairRequest>(&msg.payload)) {
    if (req->group != cfg_.group) return false;
    on_request(ctx, from, *req);
    return true;
  }
  if (const auto* snap = std::get_if<RepairSnapshot>(&msg.payload)) {
    if (snap->group != cfg_.group) return false;
    on_snapshot(ctx, from, *snap);
    return true;
  }
  return false;
}

}  // namespace fastcast::repair
